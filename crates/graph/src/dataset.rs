//! The on-disk attributed-dataset format: SNAP edge lists paired with typed
//! attribute CSVs.
//!
//! The paper evaluates on real-life crawls (YouTube, Amazon, citation
//! networks) whose edges ship as SNAP edge lists and whose node attributes
//! ship separately. This module defines the repository's portable on-disk
//! dataset format and its loaders/writers:
//!
//! * **`<name>.edges`** — a SNAP-style edge list (`#` comments, one
//!   whitespace-separated `from to` pair of `u64` ids per line), exactly the
//!   format of [`crate::io::read_snap_edge_list`];
//! * **`<name>.attrs`** — a CSV of typed node attributes. The first
//!   non-comment line is the schema header `id,<name>:<type>,...` (types:
//!   `int`, `float`, `str`, `bool`); every following line declares one node:
//!   its original id and one field per column. An empty field means "this
//!   node does not carry that attribute". String fields may be
//!   double-quoted (required when they contain commas, quotes or are empty;
//!   `""` inside quotes escapes a literal quote).
//!
//! ```text
//! # mini-youtube.attrs
//! id,category:str,rate:float,views:int
//! 0,Music,4.5,8123
//! 1,"Travel & Places",3.0,
//! ```
//!
//! **Node identity.** The attribute CSV *declares* the node set: rows are
//! processed in file order and assign dense [`NodeId`]s `0, 1, 2, …`, seeding
//! the same `u64 → NodeId` remap that [`crate::io::read_snap_edge_list`]
//! grows on first appearance. The edge file is then streamed through that
//! seeded remap, so edge endpoints bind to the declared nodes and an id
//! without an attribute row is a positioned error. This makes the format
//! closed under export → import: the writer emits attribute rows in
//! [`NodeId`] order, so a round trip reproduces the graph bit-identically —
//! including isolated nodes, which an edge list alone cannot represent.
//!
//! For a **raw crawl** (a downloaded SNAP file with no `.attrs` companion),
//! [`load_dataset`] falls back to the attribute-less
//! [`read_snap_edge_list`](crate::io::read_snap_edge_list) pass, and
//! [`attach_attrs_csv`] can later bind a (possibly partial) attribute CSV to
//! the edge-derived remap — attribute rows bind to remapped ids, and an id
//! the crawl never mentioned is a positioned error.
//!
//! All parse errors carry 1-based line numbers (and CSV column positions
//! where applicable) via [`GraphError::ParseAt`].

use crate::attributes::Attributes;
use crate::data_graph::DataGraph;
use crate::error::GraphError;
use crate::io::{read_snap_edges_into, IdRemap};
use crate::node_id::NodeId;
use crate::value::{AttrType, AttrValue};
use crate::Result;
use rustc_hash::{FxHashMap, FxHashSet};
use std::fmt;
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// File extension of the edge-list half of a dataset (`<name>.edges`).
pub const EDGES_EXT: &str = "edges";
/// File extension of the attribute-CSV half of a dataset (`<name>.attrs`).
pub const ATTRS_EXT: &str = "attrs";

/// The typed column schema of an attribute CSV, parsed from its header line
/// `id,<name>:<type>,...`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrSchema {
    /// Attribute columns in header order (the leading `id` column is
    /// implicit and not stored here).
    columns: Vec<(String, AttrType)>,
}

impl AttrSchema {
    /// The attribute columns (name, type) in header order.
    pub fn columns(&self) -> &[(String, AttrType)] {
        &self.columns
    }

    /// Number of attribute columns (excluding the `id` column).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema declares no attribute columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Parses a header line (already CSV-split is *not* required — pass the
    /// raw line). `lineno` is 0-based and only used for error positions.
    pub fn parse_header(line: &str, lineno: usize) -> Result<AttrSchema> {
        let fields = split_csv_line(line, lineno)?;
        if fields.first().map(CsvField::text) != Some("id") {
            return Err(err_at(lineno, 1, "header must start with an `id` column"));
        }
        let mut columns = Vec::with_capacity(fields.len() - 1);
        let mut seen: FxHashSet<&str> = FxHashSet::default();
        seen.insert("id");
        for (i, field) in fields.iter().enumerate().skip(1) {
            let column = i + 1;
            let field = field.text();
            let (name, ty) = field.rsplit_once(':').ok_or_else(|| {
                err_at(
                    lineno,
                    column,
                    format!("header column `{field}` is not `<name>:<type>`"),
                )
            })?;
            if name.is_empty() {
                return Err(err_at(lineno, column, "empty attribute name in header"));
            }
            let ty = AttrType::parse_name(ty).ok_or_else(|| {
                err_at(
                    lineno,
                    column,
                    format!("unknown type `{ty}` for column `{name}` (expected int, float, str or bool)"),
                )
            })?;
            columns.push((name.to_string(), ty));
        }
        for (i, (name, _)) in columns.iter().enumerate() {
            if !seen.insert(name) {
                return Err(err_at(
                    lineno,
                    i + 2,
                    format!("duplicate header column `{name}`"),
                ));
            }
        }
        Ok(AttrSchema { columns })
    }

    /// Infers the schema of a graph: the union of all attribute keys, sorted
    /// by name, each typed by its values. A key carrying values of two
    /// different types on different nodes cannot be represented in a typed
    /// column and is an error.
    pub fn infer(g: &DataGraph) -> Result<AttrSchema> {
        let mut types: FxHashMap<&str, AttrType> = FxHashMap::default();
        for v in g.nodes() {
            for (key, value) in g.attributes(v).iter() {
                let ty = value.attr_type();
                match types.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        validate_key(key)?;
                        e.insert(ty);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != ty {
                            return Err(GraphError::Parse(format!(
                                "attribute `{key}` has conflicting types {} and {ty} \
                                 across nodes; a typed CSV column cannot hold both",
                                e.get()
                            )));
                        }
                    }
                }
            }
        }
        let mut columns: Vec<(String, AttrType)> =
            types.into_iter().map(|(k, t)| (k.to_string(), t)).collect();
        columns.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(AttrSchema { columns })
    }

    /// The header line this schema serializes to (no trailing newline).
    pub fn header_line(&self) -> String {
        let mut out = String::from("id");
        for (name, ty) in &self.columns {
            out.push(',');
            out.push_str(name);
            out.push(':');
            out.push_str(ty.name());
        }
        out
    }
}

impl fmt::Display for AttrSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.header_line())
    }
}

/// A dataset loaded from disk by [`load_dataset`].
#[derive(Debug)]
pub struct OnDiskDataset {
    /// The dataset name (file stem of the `.edges`/`.attrs` pair).
    pub name: String,
    /// The loaded graph, compacted and ready for matching.
    pub graph: DataGraph,
    /// Maps each [`NodeId`] index back to the file's original `u64` id.
    pub original_ids: Vec<u64>,
    /// The attribute schema, when `<name>.attrs` was present.
    pub schema: Option<AttrSchema>,
}

/// Loads the dataset `<dir>/<name>.edges` (+ optional `<name>.attrs`).
///
/// When the attribute CSV is present it is streamed first, declaring the
/// node set (see the module docs); the edge list is then streamed through
/// the seeded remap and may only reference declared ids. Without an
/// attribute CSV this is a plain
/// [`read_snap_edge_list`](crate::io::read_snap_edge_list) pass — the
/// raw-crawl path. Each file is read in one buffered streaming pass.
pub fn load_dataset(dir: &Path, name: &str) -> Result<OnDiskDataset> {
    let edges_path = dir.join(format!("{name}.{EDGES_EXT}"));
    let attrs_path = dir.join(format!("{name}.{ATTRS_EXT}"));

    let mut g = DataGraph::new();
    let mut remap = IdRemap::new();
    let schema = if attrs_path.is_file() {
        let reader = open_buffered(&attrs_path)?;
        let schema = read_attrs_declaring(reader, &mut g, &mut remap)
            .map_err(|e| in_file(e, &attrs_path))?;
        Some(schema)
    } else {
        None
    };
    let allow_new = schema.is_none();
    let reader = open_buffered(&edges_path)?;
    read_snap_edges_into(reader, &mut g, &mut remap, allow_new)
        .map_err(|e| in_file(e, &edges_path))?;
    Ok(OnDiskDataset {
        name: name.to_string(),
        graph: g,
        original_ids: remap.into_ids(),
        schema,
    })
}

/// [`load_dataset`]'s two streaming passes over in-memory strings (tests,
/// examples). Returns `(graph, original_ids, schema)`.
pub fn read_dataset_strs(edges: &str, attrs: &str) -> Result<(DataGraph, Vec<u64>, AttrSchema)> {
    let mut g = DataGraph::new();
    let mut remap = IdRemap::new();
    let schema = read_attrs_declaring(attrs.as_bytes(), &mut g, &mut remap)?;
    read_snap_edges_into(edges.as_bytes(), &mut g, &mut remap, false)?;
    Ok((g, remap.into_ids(), schema))
}

/// Binds a typed attribute CSV to a graph loaded from a raw SNAP edge list.
///
/// `original_ids` is the remap vector returned by
/// [`read_snap_edge_list`](crate::io::read_snap_edge_list); each CSV row's
/// id is resolved through it, so attribute rows bind to the remapped
/// [`NodeId`]s. The CSV may cover only part of the node set, but a row whose
/// id never appeared in the edge list — or appears twice — is a positioned
/// error.
pub fn attach_attrs_csv<R: BufRead>(
    g: &mut DataGraph,
    original_ids: &[u64],
    reader: R,
) -> Result<AttrSchema> {
    let remap: FxHashMap<u64, NodeId> = original_ids
        .iter()
        .enumerate()
        .map(|(i, &raw)| (raw, NodeId::new(i as u32)))
        .collect();
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    parse_attrs_stream(reader, |raw, attrs, lineno| {
        let id = *remap.get(&raw).ok_or_else(|| {
            err_at(
                lineno,
                1,
                format!("unknown node id {raw}: not present in the edge list"),
            )
        })?;
        if !seen.insert(raw) {
            return Err(err_at(
                lineno,
                1,
                format!("duplicate row for node id {raw}"),
            ));
        }
        *g.attributes_mut(id) = attrs;
        Ok(())
    })
}

/// Serializes a graph's edge list in the dataset format (`<name>.edges`).
///
/// Edges are written in [`DataGraph::edges`] order with node ids equal to
/// their [`NodeId`] values, matching the id assignment
/// [`dataset_attrs_string`] declares — so a written pair reloads
/// bit-identically.
pub fn dataset_edges_string(g: &DataGraph) -> String {
    use std::fmt::Write;
    // Writing straight into the output buffer keeps the export — like the
    // loaders — free of per-edge allocations at crawl scale.
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# gpm attributed dataset: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );
    for (a, b) in g.edges() {
        let _ = writeln!(out, "{} {}", a.0, b.0);
    }
    out
}

/// Serializes a graph's node attributes in the dataset format
/// (`<name>.attrs`): the inferred schema header, then one row per node in
/// [`NodeId`] order.
///
/// Errors when the graph cannot be represented: an attribute key with
/// conflicting types across nodes, a key containing CSV metacharacters, or a
/// string value containing a line break (the format is line-oriented).
pub fn dataset_attrs_string(g: &DataGraph) -> Result<String> {
    use std::fmt::Write;
    let schema = AttrSchema::infer(g)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# gpm attributed dataset: one row per node\n{}",
        schema.header_line()
    );
    for v in g.nodes() {
        let attrs = g.attributes(v);
        let _ = write!(out, "{}", v.0);
        for (name, ty) in schema.columns() {
            out.push(',');
            if let Some(value) = attrs.get(name) {
                debug_assert_eq!(value.attr_type(), *ty);
                write_csv_field(&mut out, value)?;
            }
        }
        out.push('\n');
    }
    Ok(out)
}

/// Writes `<dir>/<name>.edges` and `<dir>/<name>.attrs` for a graph,
/// creating `dir` if needed. Returns the two paths written.
///
/// This is the writer [`load_dataset`] round-trips with; `gpm-datagen`'s
/// `export_dataset` wraps it for generated workloads.
pub fn write_dataset(dir: &Path, name: &str, g: &DataGraph) -> Result<(PathBuf, PathBuf)> {
    let attrs_text = dataset_attrs_string(g)?;
    let edges_text = dataset_edges_string(g);
    std::fs::create_dir_all(dir).map_err(|e| fs_err(dir, &e))?;
    let edges_path = dir.join(format!("{name}.{EDGES_EXT}"));
    let attrs_path = dir.join(format!("{name}.{ATTRS_EXT}"));
    std::fs::write(&edges_path, edges_text).map_err(|e| fs_err(&edges_path, &e))?;
    std::fs::write(&attrs_path, attrs_text).map_err(|e| fs_err(&attrs_path, &e))?;
    Ok((edges_path, attrs_path))
}

// ---------------------------------------------------------------------------
// Streaming attribute-CSV parsing
// ---------------------------------------------------------------------------

/// Streams an attribute CSV, creating one graph node per row (in row order,
/// which seeds the dense remap) — the attributed-dataset loading mode.
fn read_attrs_declaring<R: BufRead>(
    reader: R,
    g: &mut DataGraph,
    remap: &mut IdRemap,
) -> Result<AttrSchema> {
    parse_attrs_stream(reader, |raw, attrs, lineno| {
        let id = g.add_node(attrs);
        if !remap.insert(raw, id) {
            return Err(err_at(lineno, 1, format!("duplicate node id {raw}")));
        }
        Ok(())
    })
}

/// The shared streaming pass: parses the header, then feeds each row's
/// `(original_id, attributes, lineno)` to `on_row`. Comments (`#`) and blank
/// lines are skipped. Uses one reused line buffer, like the SNAP reader.
fn parse_attrs_stream<R: BufRead>(
    mut reader: R,
    mut on_row: impl FnMut(u64, Attributes, usize) -> Result<()>,
) -> Result<AttrSchema> {
    let mut schema: Option<AttrSchema> = None;
    let mut buf = String::new();
    let mut lineno = 0usize;
    loop {
        buf.clear();
        let read = reader
            .read_line(&mut buf)
            .map_err(|e| err_at(lineno, 0, e.to_string()))?;
        if read == 0 {
            break;
        }
        let line = buf.strip_suffix('\n').unwrap_or(&buf);
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.trim().is_empty() || line.starts_with('#') {
            lineno += 1;
            continue;
        }
        match &schema {
            None => schema = Some(AttrSchema::parse_header(line, lineno)?),
            Some(schema) => {
                let (raw, attrs) = parse_attrs_row(line, lineno, schema)?;
                on_row(raw, attrs, lineno)?;
            }
        }
        lineno += 1;
    }
    schema.ok_or_else(|| err_at(lineno, 0, "missing `id,<name>:<type>,...` header line"))
}

/// Parses one data row against the schema.
fn parse_attrs_row(line: &str, lineno: usize, schema: &AttrSchema) -> Result<(u64, Attributes)> {
    let fields = split_csv_line(line, lineno)?;
    let expected = schema.len() + 1;
    if fields.len() != expected {
        return Err(err_at(
            lineno,
            0,
            format!(
                "wrong number of fields: expected {expected} (id + {} attribute columns), found {}",
                schema.len(),
                fields.len()
            ),
        ));
    }
    let raw: u64 = fields[0]
        .parse()
        .map_err(|_| err_at(lineno, 1, format!("invalid node id `{}`", fields[0].text())))?;
    let mut attrs = Attributes::new();
    for (i, (name, ty)) in schema.columns().iter().enumerate() {
        let field = &fields[i + 1];
        // An empty unquoted field means "attribute absent"; a quoted empty
        // string (`""`) survives as an empty `str` value because the CSV
        // splitter marks it quoted.
        if field.is_empty() {
            continue;
        }
        let text = field.text();
        let value = ty.parse_value(text).ok_or_else(|| {
            err_at(
                lineno,
                i + 2,
                format!("`{text}` is not a valid {ty} for column `{name}`"),
            )
        })?;
        attrs.set(name.clone(), value);
    }
    Ok((raw, attrs))
}

/// One CSV field, remembering whether it was quoted (a quoted empty field is
/// an empty string value; an unquoted empty field means "absent").
#[derive(Debug, PartialEq, Eq)]
enum CsvField {
    Plain(String),
    Quoted(String),
}

impl CsvField {
    fn text(&self) -> &str {
        match self {
            CsvField::Plain(s) | CsvField::Quoted(s) => s,
        }
    }

    fn is_empty(&self) -> bool {
        matches!(self, CsvField::Plain(s) if s.is_empty())
    }

    fn parse<T: std::str::FromStr>(&self) -> std::result::Result<T, T::Err> {
        self.text().parse()
    }
}

/// Splits one line into CSV fields, honouring double-quoted fields with
/// `""` escapes. Fields are not trimmed. Errors carry the 1-based column
/// (field index) of the offending field.
fn split_csv_line(line: &str, lineno: usize) -> Result<Vec<CsvField>> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        let column = fields.len() + 1;
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut text = String::new();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            text.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(c) => text.push(c),
                    None => {
                        return Err(err_at(lineno, column, "unterminated quoted field"));
                    }
                }
            }
            match chars.next() {
                None => {
                    fields.push(CsvField::Quoted(text));
                    break;
                }
                Some(',') => fields.push(CsvField::Quoted(text)),
                Some(c) => {
                    return Err(err_at(
                        lineno,
                        column,
                        format!("unexpected `{c}` after closing quote"),
                    ));
                }
            }
        } else {
            let mut text = String::new();
            let mut terminated = false;
            for c in chars.by_ref() {
                match c {
                    ',' => {
                        terminated = true;
                        break;
                    }
                    '"' => {
                        return Err(err_at(
                            lineno,
                            column,
                            "unexpected `\"` inside unquoted field (quote the whole field)",
                        ));
                    }
                    c => text.push(c),
                }
            }
            fields.push(CsvField::Plain(text));
            if !terminated {
                break;
            }
        }
    }
    Ok(fields)
}

/// Appends one attribute value to `out` as a CSV field, quoting strings
/// that need it. Line breaks inside strings are unrepresentable in the
/// line-oriented format and error out.
fn write_csv_field(out: &mut String, value: &AttrValue) -> Result<()> {
    use std::fmt::Write;
    match value {
        AttrValue::Str(s) => {
            if s.contains('\n') || s.contains('\r') {
                return Err(GraphError::Parse(format!(
                    "string attribute value {s:?} contains a line break, which the \
                     line-oriented attrs format cannot represent"
                )));
            }
            if s.is_empty() || s.contains(',') || s.contains('"') {
                out.push('"');
                for c in s.chars() {
                    if c == '"' {
                        out.push('"');
                    }
                    out.push(c);
                }
                out.push('"');
            } else {
                out.push_str(s);
            }
        }
        AttrValue::Int(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::Float(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
    }
    Ok(())
}

/// Validates an attribute key for use as a CSV column name.
fn validate_key(key: &str) -> Result<()> {
    if key.is_empty() {
        return Err(GraphError::Parse(
            "empty attribute key cannot be a CSV column".to_string(),
        ));
    }
    if let Some(bad) = key
        .chars()
        .find(|c| matches!(c, ',' | '"' | ':' | '\n' | '\r'))
    {
        return Err(GraphError::Parse(format!(
            "attribute key `{key}` contains `{}`, which the attrs header cannot represent",
            bad.escape_debug()
        )));
    }
    Ok(())
}

fn err_at(lineno: usize, column: usize, msg: impl Into<String>) -> GraphError {
    GraphError::ParseAt {
        line: lineno + 1,
        column,
        msg: msg.into(),
    }
}

fn open_buffered(path: &Path) -> Result<std::io::BufReader<std::fs::File>> {
    std::fs::File::open(path)
        .map(std::io::BufReader::new)
        .map_err(|e| fs_err(path, &e))
}

fn fs_err(path: &Path, e: &std::io::Error) -> GraphError {
    GraphError::Parse(format!("{}: {e}", path.display()))
}

/// Prefixes a parse error's message with the file it came from.
fn in_file(e: GraphError, path: &Path) -> GraphError {
    match e {
        GraphError::Parse(msg) => GraphError::Parse(format!("{}: {msg}", path.display())),
        GraphError::ParseAt { line, column, msg } => GraphError::ParseAt {
            line,
            column,
            msg: format!("{}: {msg}", path.display()),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: &str = "# three nodes\n0 1\n1 2\n2 0\n";
    const ATTRS: &str = "# header then rows\n\
                         id,category:str,rate:float,verified:bool,views:int\n\
                         0,Music,4.5,true,100\n\
                         1,\"Travel & Places\",3,false,\n\
                         2,,,,7\n";

    fn expect_line(err: GraphError, line: usize) -> GraphError {
        match &err {
            GraphError::ParseAt { line: l, .. } => assert_eq!(*l, line, "wrong line in `{err}`"),
            other => panic!("expected ParseAt, got `{other}`"),
        }
        err
    }

    #[test]
    fn loads_attributed_dataset() {
        let (g, ids, schema) = read_dataset_strs(EDGES, ATTRS).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(
            schema.header_line(),
            "id,category:str,rate:float,verified:bool,views:int"
        );
        let a0 = g.attributes(NodeId::new(0));
        assert_eq!(a0.get("category"), Some(&AttrValue::Str("Music".into())));
        assert_eq!(a0.get("rate"), Some(&AttrValue::Float(4.5)));
        assert_eq!(a0.get("verified"), Some(&AttrValue::Bool(true)));
        assert_eq!(a0.get("views"), Some(&AttrValue::Int(100)));
        let a1 = g.attributes(NodeId::new(1));
        assert_eq!(
            a1.get("category"),
            Some(&AttrValue::Str("Travel & Places".into()))
        );
        assert_eq!(a1.get("views"), None, "empty field = absent attribute");
        let a2 = g.attributes(NodeId::new(2));
        assert_eq!(a2.len(), 1);
        assert_eq!(a2.get("views"), Some(&AttrValue::Int(7)));
        assert!(g.is_compact());
    }

    #[test]
    fn attrs_rows_declare_node_identity() {
        // Rows in a non-trivial original-id order: remap follows row order.
        let attrs = "id,label:str\n40,a\n10,b\n30,c\n";
        let edges = "10 30\n40 10\n";
        let (g, ids, _) = read_dataset_strs(edges, attrs).unwrap();
        assert_eq!(ids, vec![40, 10, 30]);
        assert!(g.has_edge(NodeId::new(1), NodeId::new(2))); // 10 -> 30
        assert!(g.has_edge(NodeId::new(0), NodeId::new(1))); // 40 -> 10
        assert_eq!(
            g.attributes(NodeId::new(0)).get("label"),
            Some(&AttrValue::Str("a".into()))
        );
    }

    #[test]
    fn isolated_nodes_survive() {
        let (g, ids, _) = read_dataset_strs("0 1\n", "id,x:int\n0,1\n1,2\n2,3\n").unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(
            g.attributes(NodeId::new(2)).get("x"),
            Some(&AttrValue::Int(3))
        );
    }

    #[test]
    fn edge_referencing_undeclared_id_errors_with_position() {
        let err = read_dataset_strs("0 1\n0 9\n", "id,x:int\n0,1\n1,2\n").unwrap_err();
        let err = expect_line(err, 2);
        assert!(err.to_string().contains("unknown node id 9"), "{err}");
    }

    #[test]
    fn wrong_arity_row_errors_with_line() {
        let attrs = "id,a:int,b:int\n0,1,2\n1,3\n";
        let err = read_dataset_strs("0 1\n", attrs).unwrap_err();
        let err = expect_line(err, 3);
        assert!(err.to_string().contains("wrong number of fields"), "{err}");
    }

    #[test]
    fn bad_typed_field_errors_with_line_and_column() {
        let attrs = "id,a:int,b:float\n0,1,2.5\n1,oops,3.5\n";
        let err = read_dataset_strs("0 1\n", attrs).unwrap_err();
        match &err {
            GraphError::ParseAt { line, column, .. } => {
                assert_eq!((*line, *column), (3, 2));
            }
            other => panic!("expected ParseAt, got `{other}`"),
        }
        assert!(err.to_string().contains("not a valid int"), "{err}");
    }

    #[test]
    fn duplicate_header_column_errors() {
        let err = read_dataset_strs("", "id,a:int,a:float\n").unwrap_err();
        assert!(err.to_string().contains("duplicate header column"), "{err}");
        expect_line(err, 1);
    }

    #[test]
    fn header_must_lead_with_id() {
        let err = read_dataset_strs("", "a:int,b:int\n").unwrap_err();
        assert!(err.to_string().contains("`id` column"), "{err}");
    }

    #[test]
    fn unknown_type_name_errors() {
        let err = read_dataset_strs("", "id,a:integer\n").unwrap_err();
        assert!(err.to_string().contains("unknown type `integer`"), "{err}");
    }

    #[test]
    fn duplicate_node_id_row_errors() {
        let err = read_dataset_strs("0 1\n", "id,a:int\n0,1\n1,2\n0,3\n").unwrap_err();
        let err = expect_line(err, 4);
        assert!(err.to_string().contains("duplicate node id 0"), "{err}");
    }

    #[test]
    fn invalid_node_id_errors() {
        let err = read_dataset_strs("", "id,a:int\n-3,1\n").unwrap_err();
        assert!(err.to_string().contains("invalid node id"), "{err}");
        expect_line(err, 2);
    }

    #[test]
    fn missing_header_errors() {
        let err = read_dataset_strs("", "# only a comment\n").unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = read_dataset_strs("", "id,a:str\n0,\"oops\n").unwrap_err();
        let err = expect_line(err, 2);
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn stray_quote_errors() {
        let err = read_dataset_strs("", "id,a:str\n0,o\"ops\n").unwrap_err();
        assert!(err.to_string().contains("unquoted field"), "{err}");
    }

    #[test]
    fn csv_quoting_roundtrips() {
        let attrs = "id,s:str\n0,\"a,b\"\n1,\"say \"\"hi\"\"\"\n2,\"\"\n";
        let (g, _, _) = read_dataset_strs("0 1\n1 2\n", attrs).unwrap();
        assert_eq!(
            g.attributes(NodeId::new(0)).get("s"),
            Some(&AttrValue::Str("a,b".into()))
        );
        assert_eq!(
            g.attributes(NodeId::new(1)).get("s"),
            Some(&AttrValue::Str("say \"hi\"".into()))
        );
        assert_eq!(
            g.attributes(NodeId::new(2)).get("s"),
            Some(&AttrValue::Str(String::new())),
            "quoted empty field is an empty string, not an absent attribute"
        );
    }

    #[test]
    fn writer_reader_roundtrip_is_bit_identical() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("Music").with("rate", 4.5).with("n", 3));
        let b = g.add_node(Attributes::labeled("a,b").with("q", "say \"hi\""));
        let c = g.add_node(Attributes::new()); // isolated, attribute-less
        g.add_edge(b, a).unwrap();
        g.add_edge(a, b).unwrap();
        g.compact();
        let _ = c;

        let edges = dataset_edges_string(&g);
        let attrs = dataset_attrs_string(&g).unwrap();
        let (back, ids, _) = read_dataset_strs(&edges, &attrs).unwrap();

        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(
            back.edges().collect::<Vec<_>>(),
            g.edges().collect::<Vec<_>>()
        );
        for v in g.nodes() {
            assert_eq!(back.attributes(v), g.attributes(v), "attrs of {v}");
        }
        // Byte-identical re-serialization (write -> read -> write fixpoint).
        assert_eq!(dataset_edges_string(&back), edges);
        assert_eq!(dataset_attrs_string(&back).unwrap(), attrs);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = DataGraph::new();
        let edges = dataset_edges_string(&g);
        let attrs = dataset_attrs_string(&g).unwrap();
        let (back, ids, schema) = read_dataset_strs(&edges, &attrs).unwrap();
        assert_eq!(back.node_count(), 0);
        assert!(ids.is_empty());
        assert!(schema.is_empty());
    }

    #[test]
    fn conflicting_types_cannot_be_exported() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::new().with("x", 1));
        g.add_node(Attributes::new().with("x", "one"));
        let err = dataset_attrs_string(&g).unwrap_err();
        assert!(err.to_string().contains("conflicting types"), "{err}");
    }

    #[test]
    fn newline_in_string_cannot_be_exported() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::new().with("x", "a\nb"));
        let err = dataset_attrs_string(&g).unwrap_err();
        assert!(err.to_string().contains("line break"), "{err}");
    }

    #[test]
    fn attach_attrs_to_raw_snap_graph() {
        let (mut g, ids) = crate::io::data_graph_from_snap_str("100 200\n200 300\n").unwrap();
        let schema =
            attach_attrs_csv(&mut g, &ids, "id,label:str\n200,b\n100,a\n".as_bytes()).unwrap();
        assert_eq!(schema.len(), 1);
        // 100 -> NodeId 0, 200 -> NodeId 1, 300 -> NodeId 2 (first appearance).
        assert_eq!(
            g.attributes(NodeId::new(0)).get("label"),
            Some(&AttrValue::Str("a".into()))
        );
        assert_eq!(
            g.attributes(NodeId::new(1)).get("label"),
            Some(&AttrValue::Str("b".into()))
        );
        assert!(
            g.attributes(NodeId::new(2)).is_empty(),
            "partial coverage ok"
        );
    }

    #[test]
    fn attach_rejects_unknown_and_duplicate_ids() {
        let (mut g, ids) = crate::io::data_graph_from_snap_str("1 2\n").unwrap();
        let err = attach_attrs_csv(&mut g, &ids, "id,x:int\n7,1\n".as_bytes()).unwrap_err();
        let err = expect_line(err, 2);
        assert!(err.to_string().contains("unknown node id 7"), "{err}");

        let err = attach_attrs_csv(&mut g, &ids, "id,x:int\n1,1\n1,2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate row"), "{err}");
    }

    #[test]
    fn load_dataset_from_directory() {
        let dir = std::env::temp_dir().join(format!("gpm-dataset-test-{}", std::process::id()));
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("x").with("views", 9));
        let b = g.add_node(Attributes::labeled("y"));
        g.add_edge(a, b).unwrap();
        g.compact();
        write_dataset(&dir, "tiny", &g).unwrap();

        let loaded = load_dataset(&dir, "tiny").unwrap();
        assert_eq!(loaded.name, "tiny");
        assert_eq!(loaded.graph.node_count(), 2);
        assert_eq!(loaded.original_ids, vec![0, 1]);
        assert_eq!(
            loaded.schema.as_ref().map(AttrSchema::header_line),
            Some("id,label:str,views:int".to_string())
        );
        for v in g.nodes() {
            assert_eq!(loaded.graph.attributes(v), g.attributes(v));
        }

        // Raw-crawl fallback: delete the attrs file, loading still works.
        std::fs::remove_file(dir.join("tiny.attrs")).unwrap();
        let raw = load_dataset(&dir, "tiny").unwrap();
        assert!(raw.schema.is_none());
        assert_eq!(raw.graph.node_count(), 2);
        assert!(raw.graph.attributes(NodeId::new(0)).is_empty());

        // Missing edges file is a readable error naming the path.
        let err = load_dataset(&dir, "nope").unwrap_err();
        assert!(err.to_string().contains("nope.edges"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_errors_name_the_file() {
        let dir = std::env::temp_dir().join(format!("gpm-dataset-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.edges"), "0 1\n").unwrap();
        std::fs::write(dir.join("bad.attrs"), "id,a:int\n0,x\n").unwrap();
        let err = load_dataset(&dir, "bad").unwrap_err();
        assert!(err.to_string().contains("bad.attrs"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_display_and_infer() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::new().with("b", 1).with("a", "x"));
        g.add_node(Attributes::new().with("c", true));
        let schema = AttrSchema::infer(&g).unwrap();
        assert_eq!(schema.to_string(), "id,a:str,b:int,c:bool");
        assert_eq!(schema.len(), 3);
        assert!(!schema.is_empty());
    }
}
