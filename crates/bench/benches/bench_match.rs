//! Criterion micro-benchmarks for the core `Match` algorithm: matching time
//! as a function of pattern size and data-graph size (the micro view behind
//! Figs. 6(b) and 6(f)-(h)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm::{
    bounded_simulation_with_oracle, generate_pattern, DistanceMatrix, PatternGenConfig,
    RandomGraphConfig,
};

fn bench_pattern_size(c: &mut Criterion) {
    let graph = gpm::random_graph(&RandomGraphConfig::new(2_000, 6_000, 50).with_seed(1));
    let matrix = DistanceMatrix::build(&graph);
    let mut group = c.benchmark_group("match/pattern-size");
    group.sample_size(20);
    for size in [3usize, 5, 8] {
        let (pattern, _) =
            generate_pattern(&graph, &PatternGenConfig::new(size, size, 3).with_seed(7));
        group.bench_with_input(BenchmarkId::from_parameter(size), &pattern, |b, p| {
            b.iter(|| bounded_simulation_with_oracle(p, &graph, &matrix));
        });
    }
    group.finish();
}

fn bench_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("match/graph-size");
    group.sample_size(15);
    for nodes in [1_000usize, 2_000, 4_000] {
        let graph = gpm::random_graph(&RandomGraphConfig::new(nodes, nodes * 3, 50).with_seed(2));
        let matrix = DistanceMatrix::build(&graph);
        let (pattern, _) = generate_pattern(&graph, &PatternGenConfig::new(5, 5, 3).with_seed(11));
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| bounded_simulation_with_oracle(&pattern, &graph, &matrix));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_size, bench_graph_size);
criterion_main!(benches);
