//! Quickstart: build a small attributed graph, write a bounded-simulation
//! pattern, compute the maximum match and print the result graph.
//!
//! Run with `cargo run -p gpm --example quickstart`.

use gpm::{
    bounded_simulation, CmpOp, DataGraphBuilder, PatternGraphBuilder, Predicate, ResultGraph,
};

fn main() {
    // A toy collaboration network: people with a role and a seniority score.
    // Edges mean "works with / reports to".
    let (graph, _) = DataGraphBuilder::new()
        .node(
            "alice",
            [("role", "architect")]
                .into_iter()
                .collect::<gpm::Attributes>()
                .with("seniority", 9),
        )
        .node(
            "bob",
            gpm::Attributes::new()
                .with("role", "engineer")
                .with("seniority", 4),
        )
        .node(
            "carol",
            gpm::Attributes::new()
                .with("role", "engineer")
                .with("seniority", 7),
        )
        .node(
            "dave",
            gpm::Attributes::new()
                .with("role", "analyst")
                .with("seniority", 5),
        )
        .node(
            "erin",
            gpm::Attributes::new()
                .with("role", "analyst")
                .with("seniority", 2),
        )
        .edge("alice", "bob")
        .edge("bob", "carol")
        .edge("carol", "dave")
        .edge("alice", "erin")
        .edge("erin", "dave")
        .edge("dave", "alice")
        .build()
        .expect("valid graph description");

    // Pattern: a senior architect connected, within 2 hops, to an engineer
    // who can reach (any number of hops) an analyst.
    let (pattern, ids) = PatternGraphBuilder::new()
        .node(
            "architect",
            Predicate::label_eq("role", "architect").and("seniority", CmpOp::Ge, 8),
        )
        .node("engineer", Predicate::label_eq("role", "engineer"))
        .node("analyst", Predicate::label_eq("role", "analyst"))
        .edge("architect", "engineer", 2u32)
        .unbounded_edge("engineer", "analyst")
        .build()
        .expect("valid pattern description");

    let outcome = bounded_simulation(&pattern, &graph);
    println!(
        "pattern matches: {}  (|S| = {} pairs)",
        outcome.relation.is_match(&pattern),
        outcome.relation.pair_count()
    );
    for (name, id) in [
        ("architect", ids["architect"]),
        ("engineer", ids["engineer"]),
        ("analyst", ids["analyst"]),
    ] {
        let matched: Vec<String> = outcome
            .relation
            .matches_of(id)
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        println!("  {name:<10} -> {}", matched.join(", "));
    }

    // The result graph is the compact representation of the whole match.
    let rg = ResultGraph::build(&pattern, &graph, &outcome.relation);
    println!("\n{}", rg.render(&pattern, &graph));
}
