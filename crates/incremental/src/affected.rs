//! Affected-area accounting: `AFF2` and combined statistics.
//!
//! Following Ramalingam & Reps (and Section 4.1 of the paper), the cost of an
//! incremental algorithm is measured against the size of the *affected area*
//! rather than the size of the whole input:
//!
//! * `AFF1` — node pairs of the data graph whose pairwise distance changed
//!   (produced by `gpm-distance::update_matrix[_batch]`);
//! * `AFF2` — match pairs `(u, v)` added to or removed from the maximum
//!   match, together with their neighbourhood.
//!
//! [`Aff2`] records the added/removed pairs; [`IncrementalStats`] aggregates
//! both areas per run, which is exactly what the `|AFF|/per update`
//! annotations of Figures 6(i)–(k) report.

use gpm_graph::{NodeId, PatternNodeId};

/// The changed part of the match relation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Aff2 {
    /// Pairs added to the match (`Match+` / insertion side of `IncMatch`).
    pub added: Vec<(PatternNodeId, NodeId)>,
    /// Pairs removed from the match (`Match−` / deletion side of `IncMatch`).
    pub removed: Vec<(PatternNodeId, NodeId)>,
}

impl Aff2 {
    /// Number of changed match pairs, `|AFF2|`.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the match did not change at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Merges another change set produced *after* this one. A pair that is
    /// removed and later re-added (or vice versa) cancels out.
    pub fn merge(&mut self, later: Aff2) {
        for pair in later.added {
            if let Some(pos) = self.removed.iter().position(|&p| p == pair) {
                self.removed.swap_remove(pos);
            } else {
                self.added.push(pair);
            }
        }
        for pair in later.removed {
            if let Some(pos) = self.added.iter().position(|&p| p == pair) {
                self.added.swap_remove(pos);
            } else {
                self.removed.push(pair);
            }
        }
    }
}

/// Aggregated statistics of one incremental run (unit update or batch).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// `|AFF1|`: node pairs whose distance changed.
    pub aff1: usize,
    /// `|AFF2|`: match pairs added or removed.
    pub aff2: usize,
    /// Number of candidate re-verifications performed (work proxy).
    pub verifications: usize,
}

impl IncrementalStats {
    /// The combined affected-area size reported in the figures
    /// (`|AFF| = |AFF1| + |AFF2|`).
    pub fn total_affected(&self) -> usize {
        self.aff1 + self.aff2
    }
}

/// The full outcome of one incremental operation (`Match−`, `Match+`,
/// `IncMatch`): both affected areas plus aggregate statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IncrementalOutcome {
    /// `AFF1`: the node pairs whose distance changed, with old/new values.
    pub aff1: gpm_distance::AffectedPairs,
    /// `AFF2`: the match pairs added or removed.
    pub aff2: Aff2,
    /// Aggregate statistics (sizes and work counters).
    pub stats: IncrementalStats,
}

impl IncrementalOutcome {
    /// Builds the outcome from its parts, filling in the size statistics.
    pub fn new(aff1: gpm_distance::AffectedPairs, aff2: Aff2, verifications: usize) -> Self {
        let stats = IncrementalStats {
            aff1: aff1.len(),
            aff2: aff2.len(),
            verifications,
        };
        IncrementalOutcome { aff1, aff2, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    fn d(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn len_and_empty() {
        let mut a = Aff2::default();
        assert!(a.is_empty());
        a.added.push((p(0), d(1)));
        a.removed.push((p(1), d(2)));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }

    #[test]
    fn merge_cancels_opposites() {
        let mut first = Aff2 {
            added: vec![(p(0), d(1))],
            removed: vec![(p(1), d(2))],
        };
        let second = Aff2 {
            added: vec![(p(1), d(2)), (p(2), d(3))],
            removed: vec![(p(0), d(1))],
        };
        first.merge(second);
        // (0,1) added then removed: gone. (1,2) removed then added: gone.
        assert!(first.added.iter().all(|&x| x == (p(2), d(3))));
        assert_eq!(first.added.len(), 1);
        assert!(first.removed.is_empty());
    }

    #[test]
    fn stats_total() {
        let s = IncrementalStats {
            aff1: 10,
            aff2: 4,
            verifications: 99,
        };
        assert_eq!(s.total_affected(), 14);
    }
}
