//! The query catalog: per-query state behind stable [`QueryId`]s.
//!
//! Each registered pattern owns a [`QueryEntry`]: the pattern itself, its
//! (lazily materialised) [`MatchState`], the last relation its subscribers
//! were told about, and the subscriber channels. The catalog supports
//! deregistration (the entry and its channels are dropped) and **lazy
//! (re)activation**: suspending a query frees its match state and removes it
//! from the per-batch repair fan-out entirely; resuming marks it active
//! again, and the state is rebuilt from the shared distance matrix on the
//! next batch or result read — at which point subscribers receive one
//! catch-up delta that reconciles everything they missed while suspended.

use crate::delta::{MatchDelta, QueryId};
use gpm_core::MatchRelation;
use gpm_graph::PatternGraph;
use gpm_incremental::MatchState;
use std::sync::mpsc::Sender;

/// How a query's state was brought up to date during one batch.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RepairKind {
    /// Incremental repair from the shared `AFF1` (the common path).
    Incremental,
    /// Full recomputation fallback (cyclic pattern with distance decreases).
    Recompute,
    /// Lazy activation: the state was (re)built because none existed.
    Activation,
}

/// The per-batch scratch a repair task leaves behind for the sequential
/// emission pass.
#[derive(Clone, Debug)]
pub(crate) struct BatchWork {
    pub delta: MatchDelta,
    pub kind: RepairKind,
    pub verifications: usize,
}

/// One registered query.
#[derive(Debug)]
pub struct QueryEntry {
    pub(crate) id: QueryId,
    pub(crate) pattern: PatternGraph,
    /// `None` while suspended or awaiting lazy activation.
    pub(crate) state: Option<MatchState>,
    /// The visible relation as of the last delta emission — the fold of
    /// everything subscribers have been sent.
    pub(crate) emitted: MatchRelation,
    pub(crate) active: bool,
    pub(crate) subscribers: Vec<Sender<MatchDelta>>,
    pub(crate) pending: Option<BatchWork>,
}

impl QueryEntry {
    /// The query's id.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// The registered pattern.
    pub fn pattern(&self) -> &PatternGraph {
        &self.pattern
    }

    /// Whether the query participates in per-batch repair.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Whether the match state is currently materialised (suspended or
    /// not-yet-activated queries hold none).
    pub fn has_state(&self) -> bool {
        self.state.is_some()
    }
}

/// All registered queries, in registration order.
///
/// Ids are allocated monotonically and never reused; iteration order is
/// ascending id order, which is what makes the service's delta emission
/// deterministic.
#[derive(Debug, Default)]
pub struct QueryCatalog {
    entries: Vec<QueryEntry>,
    next_id: u64,
}

impl QueryCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        QueryCatalog::default()
    }

    /// Registers a pattern with an initial state and visible relation,
    /// returning its fresh id.
    pub(crate) fn register(
        &mut self,
        pattern: PatternGraph,
        state: MatchState,
        emitted: MatchRelation,
    ) -> QueryId {
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.entries.push(QueryEntry {
            id,
            pattern,
            state: Some(state),
            emitted,
            active: true,
            subscribers: Vec::new(),
            pending: None,
        });
        id
    }

    /// Removes a query; its subscriber channels close. Returns whether the
    /// id was present.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.entries.len() != before
    }

    /// Number of registered queries (active or suspended).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The registered ids, in registration order.
    pub fn ids(&self) -> Vec<QueryId> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Shared access to an entry.
    pub fn get(&self, id: QueryId) -> Option<&QueryEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    pub(crate) fn get_mut(&mut self, id: QueryId) -> Option<&mut QueryEntry> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Rebuilds a catalog from recovered entries (durability layer).
    ///
    /// Entries must be in registration order with strictly ascending ids all
    /// below `next_id`, or the persisted catalog could allocate a duplicate
    /// id after recovery — rejected as corruption.
    pub(crate) fn restore(next_id: u64, entries: Vec<QueryEntry>) -> Result<Self, String> {
        let mut prev: Option<u64> = None;
        for e in &entries {
            if prev.is_some_and(|p| p >= e.id.0) {
                return Err(format!(
                    "catalog snapshot ids are not strictly ascending at {}",
                    e.id
                ));
            }
            if e.id.0 >= next_id {
                return Err(format!(
                    "catalog snapshot contains {} but next_id is only {next_id}",
                    e.id
                ));
            }
            prev = Some(e.id.0);
        }
        Ok(QueryCatalog { entries, next_id })
    }

    /// The id the next registration will be assigned (durability layer:
    /// persisted so recovered services never reuse an id).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Builds one recovered entry (no subscribers — subscriptions are
    /// ephemeral and do not survive a restart).
    pub(crate) fn restored_entry(
        id: QueryId,
        pattern: PatternGraph,
        state: Option<MatchState>,
        emitted: MatchRelation,
        active: bool,
    ) -> QueryEntry {
        QueryEntry {
            id,
            pattern,
            state,
            emitted,
            active,
            subscribers: Vec::new(),
            pending: None,
        }
    }

    /// Iterates over every entry in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &QueryEntry> {
        self.entries.iter()
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut QueryEntry> {
        self.entries.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::PatternGraphBuilder;

    fn entry_pattern() -> PatternGraph {
        PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .build()
            .unwrap()
            .0
    }

    fn dummy_state(p: &PatternGraph) -> MatchState {
        let g = gpm_graph::DataGraph::new();
        let m = gpm_distance::DistanceMatrix::build(&g);
        MatchState::initialise(p, &g, &m)
    }

    #[test]
    fn ids_are_monotonic_and_never_reused() {
        let mut c = QueryCatalog::new();
        let p = entry_pattern();
        let a = c.register(p.clone(), dummy_state(&p), MatchRelation::empty(2));
        let b = c.register(p.clone(), dummy_state(&p), MatchRelation::empty(2));
        assert!(a < b);
        assert!(c.deregister(a));
        assert!(!c.deregister(a), "double deregister is a no-op");
        let d = c.register(p.clone(), dummy_state(&p), MatchRelation::empty(2));
        assert!(d > b, "freed ids are not recycled");
        assert_eq!(c.ids(), vec![b, d]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn get_and_accessors() {
        let mut c = QueryCatalog::new();
        let p = entry_pattern();
        let id = c.register(p.clone(), dummy_state(&p), MatchRelation::empty(2));
        let e = c.get(id).unwrap();
        assert_eq!(e.id(), id);
        assert_eq!(e.pattern().node_count(), 2);
        assert!(e.is_active());
        assert!(e.has_state());
        assert!(c.get(QueryId(999)).is_none());
        assert_eq!(c.iter().count(), 1);
    }
}
