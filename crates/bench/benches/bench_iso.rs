//! Criterion micro-benchmarks for the subgraph-isomorphism baselines:
//! Ullmann (`SubIso`) vs VF2 vs bounded simulation on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm::{
    bounded_simulation_with_oracle, generate_pattern, subgraph_isomorphism_ullmann,
    subgraph_isomorphism_vf2, DistanceMatrix, IsoConfig, PatternGenConfig, RandomGraphConfig,
};

fn bench_baselines(c: &mut Criterion) {
    let graph = gpm::random_graph(&RandomGraphConfig::new(1_000, 3_000, 30).with_seed(12));
    let matrix = DistanceMatrix::build(&graph);
    let config = IsoConfig {
        max_embeddings: 1_000,
        max_steps: 500_000,
    };

    let mut group = c.benchmark_group("iso/baselines");
    group.sample_size(15);
    for size in [3usize, 5] {
        let (pattern, _) = generate_pattern(
            &graph,
            &PatternGenConfig {
                max_bound: 1,
                bound_variation: 0,
                unbounded_probability: 0.0,
                ..PatternGenConfig::new(size, size, 1).with_seed(13)
            },
        );
        group.bench_with_input(BenchmarkId::new("ullmann", size), &pattern, |b, p| {
            b.iter(|| subgraph_isomorphism_ullmann(p, &graph, &config));
        });
        group.bench_with_input(BenchmarkId::new("vf2", size), &pattern, |b, p| {
            b.iter(|| subgraph_isomorphism_vf2(p, &graph, &config));
        });
        group.bench_with_input(
            BenchmarkId::new("bounded-simulation", size),
            &pattern,
            |b, p| {
                b.iter(|| bounded_simulation_with_oracle(p, &graph, &matrix));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
