//! Incremental maintenance of the distance matrix — the paper's `UpdateM`
//! (unit updates) and `UpdateBM` (batch updates).
//!
//! Both procedures take the data graph *after* the update has been applied,
//! patch the matrix in place and return `AFF1`: the set of source–sink pairs
//! whose (non-empty) distance changed, together with the old and new values.
//! `AFF1` is what drives `Match−`/`Match+`/`IncMatch` in `gpm-incremental`,
//! and its size is the first factor of the `O(|AFF1| |AFF2|²)` bound of
//! Theorem 4.1.
//!
//! Implementation notes:
//!
//! * **insertion** of `(s, t)` can only shorten distances, and any new
//!   shortest path uses the new edge exactly once, so
//!   `new(x, y) = min(old(x, y), std(x, s) + 1 + std(t, y))` computed over
//!   `ancestors(s) × descendants(t)` — work proportional to the affected
//!   rectangle;
//! * **deletion** of `(s, t)` can only lengthen distances and can only affect
//!   pairs `(x, y)` whose old shortest path went through the deleted edge
//!   (`std(x, s) + 1 + std(t, y) = old(x, y)`); the rows of those affected
//!   sources are rebuilt with a BFS on the updated graph.

use crate::matrix::DistanceMatrix;
use crate::UNREACHABLE;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, NodeId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// A single edge update applied to a data graph.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeUpdate {
    /// Insert the edge `(from, to)`.
    Insert(NodeId, NodeId),
    /// Delete the edge `(from, to)`.
    Delete(NodeId, NodeId),
}

impl EdgeUpdate {
    /// The edge endpoints `(from, to)` of the update.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeUpdate::Insert(a, b) | EdgeUpdate::Delete(a, b) => (a, b),
        }
    }

    /// Whether this is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeUpdate::Insert(..))
    }

    /// Applies this update to `g`; returns `false` (and leaves `g` unchanged)
    /// if it is a no-op (inserting an existing edge / deleting a missing one).
    pub fn apply(&self, g: &mut DataGraph) -> bool {
        match *self {
            EdgeUpdate::Insert(a, b) => g.try_add_edge(a, b).unwrap_or(false),
            EdgeUpdate::Delete(a, b) => g.remove_edge(a, b).is_ok(),
        }
    }

    /// The inverse update (insert <-> delete of the same edge).
    pub fn inverse(&self) -> EdgeUpdate {
        match *self {
            EdgeUpdate::Insert(a, b) => EdgeUpdate::Delete(a, b),
            EdgeUpdate::Delete(a, b) => EdgeUpdate::Insert(a, b),
        }
    }
}

impl std::fmt::Display for EdgeUpdate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeUpdate::Insert(a, b) => write!(f, "+({a}, {b})"),
            EdgeUpdate::Delete(a, b) => write!(f, "-({a}, {b})"),
        }
    }
}

/// One entry of `AFF1`: the distance from `source` to `sink` changed from
/// `old` to `new` (both in hops, `UNREACHABLE` = no path).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AffectedPair {
    /// The source of the affected pair.
    pub source: NodeId,
    /// The sink of the affected pair.
    pub sink: NodeId,
    /// The distance before the update.
    pub old: u16,
    /// The distance after the update.
    pub new: u16,
}

impl AffectedPair {
    /// Whether the distance increased (deletions) rather than decreased.
    pub fn increased(&self) -> bool {
        self.new > self.old
    }
}

/// The set `AFF1` of node pairs whose pairwise distance changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AffectedPairs {
    /// The affected pairs, in no particular order.
    pub pairs: Vec<AffectedPair>,
}

impl AffectedPairs {
    /// Number of affected source–sink pairs, `|AFF1|`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no pair was affected.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the affected pairs.
    pub fn iter(&self) -> impl Iterator<Item = &AffectedPair> {
        self.pairs.iter()
    }

    /// Merges another `AFF1` into this one, keeping the earliest `old` value
    /// and the latest `new` value for pairs affected more than once, and
    /// dropping pairs whose distance ends up unchanged.
    pub fn merge(&mut self, later: AffectedPairs) {
        use rustc_hash::FxHashMap;
        let mut by_pair: FxHashMap<(NodeId, NodeId), AffectedPair> = self
            .pairs
            .drain(..)
            .map(|p| ((p.source, p.sink), p))
            .collect();
        for p in later.pairs {
            by_pair
                .entry((p.source, p.sink))
                .and_modify(|existing| existing.new = p.new)
                .or_insert(p);
        }
        self.pairs = by_pair.into_values().filter(|p| p.old != p.new).collect();
    }
}

/// `UpdateM`: maintains the distance matrix under a **single** edge update.
///
/// `g` must already reflect the update (edge inserted/removed); `matrix` must
/// be the matrix of the graph *before* the update. Returns `AFF1`.
pub fn update_matrix(
    g: &DataGraph,
    matrix: &mut DistanceMatrix,
    update: EdgeUpdate,
) -> AffectedPairs {
    update_matrix_with(g, matrix, update, &Executor::from_env())
}

/// [`update_matrix`] on an explicit executor.
///
/// The affected area is partitioned across the workers: insertions scan the
/// `ancestors(s) × descendants(t)` rectangle one source row per task (each
/// row is read/written independently), deletions repair one affected sink
/// column per task (columns are disjoint; the shared column of `s` is
/// read-only during repair). Results are merged in source/sink order, so the
/// outcome — including the order of `AFF1` — is identical at every thread
/// count.
pub fn update_matrix_with(
    g: &DataGraph,
    matrix: &mut DistanceMatrix,
    update: EdgeUpdate,
    exec: &Executor,
) -> AffectedPairs {
    debug_assert_eq!(g.node_count(), matrix.node_count());
    match update {
        EdgeUpdate::Insert(s, t) => apply_insertion(g, matrix, s, t, exec),
        EdgeUpdate::Delete(s, t) => apply_deletion(g, matrix, s, t, exec),
    }
}

/// `UpdateBM`: maintains the distance matrix under a **batch** of edge
/// updates, returning the combined `AFF1` (pairs whose distance differs
/// between the state before the first update and after the last one).
///
/// `g` must reflect the state *after the whole batch*; `updates` lists the
/// updates in application order.
pub fn update_matrix_batch(
    g: &DataGraph,
    matrix: &mut DistanceMatrix,
    updates: &[EdgeUpdate],
) -> AffectedPairs {
    update_matrix_batch_with(g, matrix, updates, &Executor::from_env())
}

/// [`update_matrix_batch`] on an explicit executor. The batch is replayed
/// unit by unit (each update must see the matrix left by the previous one);
/// within each unit update the affected area is partitioned across the
/// workers as in [`update_matrix_with`].
pub fn update_matrix_batch_with(
    g: &DataGraph,
    matrix: &mut DistanceMatrix,
    updates: &[EdgeUpdate],
    exec: &Executor,
) -> AffectedPairs {
    // Replay the batch on a scratch copy of the graph so each unit update
    // sees the right intermediate adjacency.
    let mut combined = AffectedPairs::default();
    if updates.is_empty() {
        return combined;
    }
    // Reconstruct the pre-batch graph by undoing the updates in reverse.
    let mut scratch = g.clone();
    for u in updates.iter().rev() {
        u.inverse().apply(&mut scratch);
    }
    for u in updates {
        if !u.apply(&mut scratch) {
            continue; // no-op update (duplicate insert / missing delete)
        }
        let aff = update_matrix_with(&scratch, matrix, *u, exec);
        combined.merge(aff);
    }
    combined
}

fn apply_insertion(
    g: &DataGraph,
    matrix: &mut DistanceMatrix,
    s: NodeId,
    t: NodeId,
    exec: &Executor,
) -> AffectedPairs {
    debug_assert!(g.has_edge(s, t), "graph must already contain the new edge");
    let n = g.node_count();

    // Only pairs (x, y) with x an ancestor of s and y a descendant of t can
    // improve, and x only matters if its distance *to t itself* improves
    // (otherwise `x → s → t → y` cannot beat the existing route for any y):
    // dist(x, t) > dist(x, s) + 1.
    let sinks: Vec<(NodeId, u16)> = (0..n as u32)
        .map(NodeId::new)
        .filter_map(|y| {
            let d = if y == t { 0 } else { matrix.get(t, y) };
            (d != UNREACHABLE).then_some((y, d))
        })
        .collect();

    // Phase 1 (parallel, read-only): each source row of the affected
    // rectangle is scanned independently — every value a row needs (its own
    // `(x, s)` / `(x, t)` entries and the captured `sinks` of row `t`) is
    // fixed before any write happens, so computing improvements first and
    // writing them afterwards yields exactly the sequential result.
    let per_source: Vec<Vec<AffectedPair>> = exec.par_map_index(n, |xi| {
        let x = NodeId::new(xi as u32);
        let dx = if x == s { 0 } else { matrix.get(x, s) };
        if dx == UNREACHABLE {
            return Vec::new();
        }
        let to_t = matrix.get(x, t);
        if u32::from(to_t) <= u32::from(dx) + 1 {
            return Vec::new(); // no improvement possible through the new edge
        }
        let mut improved = Vec::new();
        for &(y, dy) in &sinks {
            let via = u32::from(dx) + 1 + u32::from(dy);
            let via = if via >= u32::from(UNREACHABLE) {
                UNREACHABLE - 1
            } else {
                via as u16
            };
            let old = matrix.get(x, y);
            if via < old {
                improved.push(AffectedPair {
                    source: x,
                    sink: y,
                    old,
                    new: via,
                });
            }
        }
        improved
    });

    // Phase 2: apply the improvements in source order.
    let mut affected = Vec::new();
    for pairs in per_source {
        for p in pairs {
            matrix.set(p.source, p.sink, p.new);
            affected.push(p);
        }
    }
    AffectedPairs { pairs: affected }
}

fn apply_deletion(
    g: &DataGraph,
    matrix: &mut DistanceMatrix,
    s: NodeId,
    t: NodeId,
    exec: &Executor,
) -> AffectedPairs {
    debug_assert!(
        !g.has_edge(s, t),
        "graph must no longer contain the deleted edge"
    );
    let n = g.node_count();
    let mut affected = Vec::new();

    // A pair (x, y) can only be affected if *every* old shortest path from x
    // to y went through the deleted edge, which forces
    //   old(x, y) = std_old(x, s) + 1 + std_old(t, y),
    // and in that case the distance from s to y itself must change as well.
    // So: (1) rebuild the row of s with one BFS and diff it to obtain the set
    // D of truly affected sinks; (2) repair each sink in D independently with
    // a Dijkstra-style pass over its candidate sources (the Ramalingam–Reps
    // deletion repair), touching only work proportional to the affected area.
    let old_from_t: Vec<u16> = (0..n as u32)
        .map(|yi| {
            let y = NodeId::new(yi);
            if y == t {
                0
            } else {
                matrix.get(t, y)
            }
        })
        .collect();
    let changed_sinks: Vec<NodeId> = matrix
        .rebuild_row(g, s)
        .into_iter()
        .map(|(sink, old, new)| {
            affected.push(AffectedPair {
                source: s,
                sink,
                old,
                new,
            });
            sink
        })
        .collect();
    if changed_sinks.is_empty() {
        return AffectedPairs { pairs: affected };
    }
    // Candidate sources: nodes with a finite (old) distance to s. The column
    // of s is never modified by the per-sink repairs (no shortest path to s
    // can use the edge (s, t)), so reading it here is safe.
    let sources_to_s: Vec<(NodeId, u16)> = (0..n as u32)
        .map(NodeId::new)
        .filter(|&x| x != s)
        .filter_map(|x| {
            let d = matrix.get(x, s);
            (d != UNREACHABLE).then_some((x, d))
        })
        .collect();

    // Repair the affected sinks: each repair touches only its own matrix
    // column (plus the read-only `sources_to_s` snapshot of the column of
    // `s`), so the sinks partition the affected area across the workers.
    // When the region actually runs parallel, every task computes its
    // column's changes against the unmodified matrix (pending values in a
    // local overlay) and the changes are applied in sink order afterwards;
    // a single-worker region writes the matrix in place instead, skipping
    // the overlay lookups. Both column stores run the identical repair
    // algorithm, so the output — order included — is the same either way
    // (the determinism suite pits the two paths against each other).
    let repair_sinks: Vec<(NodeId, u16)> = changed_sinks
        .iter()
        .filter_map(|&y| {
            let from_t = old_from_t[y.index()];
            (from_t != UNREACHABLE).then_some((y, from_t))
        })
        .collect();
    if repair_sinks.len() <= 1 || !exec.parallelism().should_parallelise(n) {
        for &(y, from_t) in &repair_sinks {
            let mut column = DirectColumn { matrix, y };
            compute_sink_repair(g, &mut column, y, from_t, &sources_to_s, &mut affected);
        }
        return AffectedPairs { pairs: affected };
    }
    let snapshot: &DistanceMatrix = matrix;
    let per_sink: Vec<Vec<AffectedPair>> = exec.map_tasks(repair_sinks.len(), n, |i| {
        let (y, from_t) = repair_sinks[i];
        let mut column = SnapshotColumn {
            matrix: snapshot,
            y,
            settled: FxHashMap::default(),
        };
        let mut changes = Vec::new();
        compute_sink_repair(g, &mut column, y, from_t, &sources_to_s, &mut changes);
        changes
    });
    for changes in per_sink {
        for p in changes {
            matrix.set(p.source, p.sink, p.new);
            affected.push(p);
        }
    }
    AffectedPairs { pairs: affected }
}

/// One matrix column as seen by a sink repair (see [`compute_sink_repair`]).
trait ColumnStore {
    /// The current distance from `w` to the repair's sink.
    fn get(&self, w: NodeId) -> u16;
    /// Records the repaired distance from `x` to the sink.
    fn set(&mut self, x: NodeId, value: u16);
}

/// In-place column access: reads and writes go straight to the matrix
/// (single-worker repairs, no overlay overhead).
struct DirectColumn<'a> {
    matrix: &'a mut DistanceMatrix,
    y: NodeId,
}

impl ColumnStore for DirectColumn<'_> {
    #[inline]
    fn get(&self, w: NodeId) -> u16 {
        self.matrix.get(w, self.y)
    }
    #[inline]
    fn set(&mut self, x: NodeId, value: u16) {
        self.matrix.set(x, self.y, value);
    }
}

/// Read-only column access with a local overlay of the values this repair
/// has settled, so independent sinks can be repaired concurrently against
/// the same matrix snapshot.
struct SnapshotColumn<'a> {
    matrix: &'a DistanceMatrix,
    y: NodeId,
    settled: FxHashMap<NodeId, u16>,
}

impl ColumnStore for SnapshotColumn<'_> {
    #[inline]
    fn get(&self, w: NodeId) -> u16 {
        self.settled
            .get(&w)
            .copied()
            .unwrap_or_else(|| self.matrix.get(w, self.y))
    }
    #[inline]
    fn set(&mut self, x: NodeId, value: u16) {
        self.settled.insert(x, value);
    }
}

/// Repairs the column of sink `y` after the deletion of `(s, t)`, reading
/// and writing the column through a [`ColumnStore`] and appending every
/// change to `changes`.
///
/// `sources_to_s` holds every node with a finite standard distance to `s`
/// (the only possible affected sources); `from_t` is the old standard
/// distance from `t` to `y`. Non-candidate nodes keep provably correct
/// values and act as the fixed boundary of a Dijkstra-like repair.
fn compute_sink_repair<C: ColumnStore>(
    g: &DataGraph,
    column: &mut C,
    y: NodeId,
    from_t: u16,
    sources_to_s: &[(NodeId, u16)],
    changes: &mut Vec<AffectedPair>,
) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    // Affected-source candidates for this sink: old(x, y) = to_s + 1 + from_t.
    let mut candidates: Vec<NodeId> = Vec::new();
    for &(x, to_s) in sources_to_s {
        let old = column.get(x);
        if old != UNREACHABLE && u32::from(old) == u32::from(to_s) + 1 + u32::from(from_t) {
            candidates.push(x);
        }
    }
    if candidates.is_empty() {
        return;
    }
    // Membership / finalization bookkeeping local to the candidate set.
    let mut in_repair: FxHashSet<NodeId> = candidates.iter().copied().collect();
    let mut finalized: FxHashSet<NodeId> = FxHashSet::default();

    // Standard distance from `w` to `y` using only provably-correct values
    // (boundary nodes and already-finalized candidates).
    let std_to_y = |w: NodeId,
                    column: &C,
                    in_repair: &FxHashSet<NodeId>,
                    finalized: &FxHashSet<NodeId>|
     -> Option<u32> {
        if w == y {
            return Some(0);
        }
        if in_repair.contains(&w) && !finalized.contains(&w) {
            return None;
        }
        match column.get(w) {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    };

    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
    for &x in &candidates {
        let mut best = None;
        for &w in g.out_neighbors(x) {
            if let Some(d) = std_to_y(w, column, &in_repair, &finalized) {
                let via = d + 1;
                if best.map_or(true, |b| via < b) {
                    best = Some(via);
                }
            }
        }
        if let Some(b) = best {
            heap.push(Reverse((b, x)));
        }
    }

    while let Some(Reverse((dist, x))) = heap.pop() {
        if finalized.contains(&x) {
            continue;
        }
        // Lazy-deletion Dijkstra: verify the entry is still the best known.
        let mut best = None;
        for &w in g.out_neighbors(x) {
            if let Some(d) = std_to_y(w, column, &in_repair, &finalized) {
                let via = d + 1;
                if best.map_or(true, |b| via < b) {
                    best = Some(via);
                }
            }
        }
        let Some(best) = best else { continue };
        if best > dist {
            heap.push(Reverse((best, x)));
            continue;
        }
        finalized.insert(x);
        let new = if best >= u32::from(UNREACHABLE) {
            UNREACHABLE - 1
        } else {
            best as u16
        };
        let old = column.get(x);
        if new != old {
            column.set(x, new);
            changes.push(AffectedPair {
                source: x,
                sink: y,
                old,
                new,
            });
        }
        // Relax candidate predecessors of x.
        for &p in g.in_neighbors(x) {
            if in_repair.contains(&p) && !finalized.contains(&p) {
                heap.push(Reverse((u32::from(new) + 1, p)));
            }
        }
    }

    // Candidates never finalized are no longer able to reach y at all.
    in_repair.retain(|x| !finalized.contains(x));
    for x in in_repair {
        let old = column.get(x);
        if old != UNREACHABLE {
            column.set(x, UNREACHABLE);
            changes.push(AffectedPair {
                source: x,
                sink: y,
                old,
                new: UNREACHABLE,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom as _;
    use rand::{Rng as _, SeedableRng as _};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path_graph(len: u32) -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(len as usize);
        for i in 0..len - 1 {
            g.add_edge(n(i), n(i + 1)).unwrap();
        }
        g
    }

    #[test]
    fn edge_update_helpers() {
        let mut g = path_graph(3);
        let ins = EdgeUpdate::Insert(n(2), n(0));
        let del = EdgeUpdate::Delete(n(0), n(1));
        assert_eq!(ins.endpoints(), (n(2), n(0)));
        assert!(ins.is_insert());
        assert!(!del.is_insert());
        assert_eq!(ins.inverse(), EdgeUpdate::Delete(n(2), n(0)));
        assert_eq!(ins.to_string(), "+(v2, v0)");
        assert_eq!(del.to_string(), "-(v0, v1)");
        assert!(ins.apply(&mut g));
        assert!(!ins.apply(&mut g)); // duplicate insert is a no-op
        assert!(del.apply(&mut g));
        assert!(!del.apply(&mut g)); // already deleted
    }

    #[test]
    fn insertion_creates_shortcut() {
        // 0 -> 1 -> 2 -> 3; insert 0 -> 3.
        let mut g = path_graph(4);
        let mut m = DistanceMatrix::build(&g);
        assert_eq!(m.nonempty_distance(n(0), n(3)), Some(3));

        let update = EdgeUpdate::Insert(n(0), n(3));
        update.apply(&mut g);
        let aff = update_matrix(&g, &mut m, update);

        assert_eq!(m.nonempty_distance(n(0), n(3)), Some(1));
        assert_eq!(m, DistanceMatrix::build(&g));
        assert!(aff
            .iter()
            .any(|p| p.source == n(0) && p.sink == n(3) && !p.increased()));
    }

    #[test]
    fn insertion_creating_cycle_updates_diagonal() {
        // 0 -> 1 -> 2; insert 2 -> 0 closing a cycle.
        let mut g = path_graph(3);
        let mut m = DistanceMatrix::build(&g);
        assert_eq!(m.nonempty_distance(n(0), n(0)), None);

        let update = EdgeUpdate::Insert(n(2), n(0));
        update.apply(&mut g);
        let aff = update_matrix(&g, &mut m, update);

        assert_eq!(m, DistanceMatrix::build(&g));
        assert_eq!(m.nonempty_distance(n(0), n(0)), Some(3));
        assert_eq!(m.nonempty_distance(n(2), n(1)), Some(2));
        assert!(!aff.is_empty());
    }

    #[test]
    fn deletion_disconnects() {
        // 0 -> 1 -> 2 -> 3; delete 1 -> 2.
        let mut g = path_graph(4);
        let mut m = DistanceMatrix::build(&g);

        let update = EdgeUpdate::Delete(n(1), n(2));
        update.apply(&mut g);
        let aff = update_matrix(&g, &mut m, update);

        assert_eq!(m, DistanceMatrix::build(&g));
        assert_eq!(m.nonempty_distance(n(0), n(3)), None);
        assert!(aff
            .iter()
            .any(|p| p.source == n(0) && p.sink == n(3) && p.increased()));
        // Pairs not using the edge are untouched.
        assert!(!aff.iter().any(|p| p.source == n(2)));
    }

    #[test]
    fn deletion_with_alternative_path() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3; deleting 1 -> 3 keeps dist(0,3) = 2.
        let mut g = DataGraph::new();
        g.add_nodes(4);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(3)).unwrap();
        g.add_edge(n(0), n(2)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        let mut m = DistanceMatrix::build(&g);

        let update = EdgeUpdate::Delete(n(1), n(3));
        update.apply(&mut g);
        let aff = update_matrix(&g, &mut m, update);

        assert_eq!(m, DistanceMatrix::build(&g));
        assert_eq!(m.nonempty_distance(n(0), n(3)), Some(2));
        // dist(0, 3) did not change; only (1, 3) got worse.
        assert!(aff.iter().all(|p| p.source != n(0) || p.sink != n(3)));
        assert!(aff.iter().any(|p| p.source == n(1) && p.sink == n(3)));
    }

    #[test]
    fn affected_pairs_merge() {
        let mut a = AffectedPairs {
            pairs: vec![AffectedPair {
                source: n(0),
                sink: n(1),
                old: 3,
                new: 5,
            }],
        };
        let b = AffectedPairs {
            pairs: vec![
                AffectedPair {
                    source: n(0),
                    sink: n(1),
                    old: 5,
                    new: 3,
                },
                AffectedPair {
                    source: n(2),
                    sink: n(3),
                    old: UNREACHABLE,
                    new: 1,
                },
            ],
        };
        a.merge(b);
        // (0,1) went 3 -> 5 -> 3: net unchanged, dropped.
        assert_eq!(a.len(), 1);
        assert_eq!(a.pairs[0].source, n(2));
        assert!(!a.is_empty());
    }

    #[test]
    fn batch_update_equals_recompute() {
        let mut g = path_graph(6);
        g.add_edge(n(5), n(0)).unwrap();
        let mut m = DistanceMatrix::build(&g);
        let before = m.clone();

        let updates = vec![
            EdgeUpdate::Insert(n(0), n(3)),
            EdgeUpdate::Delete(n(2), n(3)),
            EdgeUpdate::Insert(n(3), n(1)),
            EdgeUpdate::Delete(n(5), n(0)),
        ];
        for u in &updates {
            u.apply(&mut g);
        }
        let aff = update_matrix_batch(&g, &mut m, &updates);
        assert_eq!(m, DistanceMatrix::build(&g));

        // AFF1 lists exactly the pairs whose distance differs from before.
        for p in aff.iter() {
            assert_ne!(before.get(p.source, p.sink), m.get(p.source, p.sink));
            assert_eq!(p.old, before.get(p.source, p.sink));
            assert_eq!(p.new, m.get(p.source, p.sink));
        }
        for x in g.nodes() {
            for y in g.nodes() {
                if before.get(x, y) != m.get(x, y) {
                    assert!(
                        aff.iter().any(|p| p.source == x && p.sink == y),
                        "changed pair ({x},{y}) missing from AFF1"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_with_noop_updates() {
        let mut g = path_graph(3);
        let mut m = DistanceMatrix::build(&g);
        // Deleting a non-existent edge and re-inserting an existing one are
        // both no-ops and must not corrupt the matrix.
        let updates = vec![
            EdgeUpdate::Delete(n(2), n(0)),
            EdgeUpdate::Insert(n(0), n(1)),
        ];
        let aff = update_matrix_batch(&g, &mut m, &updates);
        assert!(aff.is_empty());
        assert_eq!(m, DistanceMatrix::build(&g));
        let _ = &mut g;
    }

    #[test]
    fn empty_batch() {
        let g = path_graph(3);
        let mut m = DistanceMatrix::build(&g);
        let aff = update_matrix_batch(&g, &mut m, &[]);
        assert!(aff.is_empty());
    }

    fn random_graph_and_updates(
        seed: u64,
        nodes: usize,
        edges: usize,
        updates: usize,
    ) -> (DataGraph, Vec<EdgeUpdate>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = DataGraph::new();
        g.add_nodes(nodes);
        while g.edge_count() < edges {
            let a = rng.gen_range(0..nodes as u32);
            let b = rng.gen_range(0..nodes as u32);
            let _ = g.try_add_edge(n(a), n(b));
        }
        let mut scratch = g.clone();
        let mut ups = Vec::new();
        for _ in 0..updates {
            if rng.gen_bool(0.5) && scratch.edge_count() > 0 {
                // Delete a random existing edge.
                let edges: Vec<_> = scratch.edges().collect();
                let &(a, b) = edges.choose(&mut rng).unwrap();
                let u = EdgeUpdate::Delete(a, b);
                u.apply(&mut scratch);
                ups.push(u);
            } else {
                let a = n(rng.gen_range(0..nodes as u32));
                let b = n(rng.gen_range(0..nodes as u32));
                if !scratch.has_edge(a, b) {
                    let u = EdgeUpdate::Insert(a, b);
                    u.apply(&mut scratch);
                    ups.push(u);
                }
            }
        }
        (g, ups)
    }

    #[test]
    fn randomized_unit_updates_match_recompute() {
        for seed in 0..8u64 {
            let (mut g, updates) = random_graph_and_updates(seed, 14, 30, 12);
            let mut m = DistanceMatrix::build(&g);
            for u in updates {
                if !u.apply(&mut g) {
                    continue;
                }
                update_matrix(&g, &mut m, u);
                assert_eq!(m, DistanceMatrix::build(&g), "seed {seed}, update {u}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// After an arbitrary batch, the incrementally maintained matrix
        /// equals a from-scratch rebuild, and AFF1 is exactly the changed set.
        #[test]
        fn prop_batch_matches_recompute(seed in 0u64..500) {
            let (mut g, updates) = random_graph_and_updates(seed, 12, 24, 8);
            let mut m = DistanceMatrix::build(&g);
            let before = m.clone();
            for u in &updates {
                u.apply(&mut g);
            }
            let aff = update_matrix_batch(&g, &mut m, &updates);
            let rebuilt = DistanceMatrix::build(&g);
            prop_assert_eq!(&m, &rebuilt);
            let mut changed = 0usize;
            for x in g.nodes() {
                for y in g.nodes() {
                    if before.get(x, y) != rebuilt.get(x, y) {
                        changed += 1;
                        prop_assert!(aff.iter().any(|p| p.source == x && p.sink == y));
                    }
                }
            }
            prop_assert_eq!(changed, aff.len());
        }
    }
}
