//! Adversarial topologies for the distance back-ends: the deterministic
//! worst-case generators from `gpm::datagen::adversarial` driven through
//! both maintainable oracles, asserting (a) bit-identical behaviour and
//! (b) *where* the 2-hop backend's incremental repair degrades to a counted
//! full rebuild ([`gpm::DistanceOracle::rebuilds`]).
//!
//! The degradation map these tests pin down:
//!
//! | script | 2-hop repair path | rebuilds |
//! |--------|-------------------|----------|
//! | insertions (any topology) | resumed pruned BFS | 0 |
//! | cut chain at the head (`k = 0`) | in-place row repair — nothing reaches the head | 0 |
//! | cut chain mid-way (`k > 0`) | upstream sources exist → rebuild | 1 |
//! | delete every hub→leaf star edge | every deletion strands a leaf | 1 per edge |
//! | cut a clique bridge | the whole upstream clique reaches the cut | 1 |
//! | sever a bowtie `source → waist` edge | nothing reaches the source → in-place row repair | 0 |
//! | sever every bowtie `waist → sink` edge | every source reaches the cut | 1 per edge |
//!
//! The "1 per edge" rows hold for *unit-by-unit* application only: through
//! the batch surface ([`gpm::DistanceOracle::apply_batch`]) rebuild-demanding
//! deletions are deferred into a **single** end-of-batch rebuild, which the
//! two teardown-batch tests at the bottom pin down.

use gpm::datagen::{
    bowtie, cliques_with_bridges, cut_bridge_updates, cut_chain_updates, deep_chain,
    delete_hub_updates, grid, sever_waist_updates, star,
};
use gpm::{DataGraph, DistanceOracle, EdgeUpdate, Executor, NodeId, OracleBackend, Parallelism};

fn exec() -> Executor {
    Executor::new(Parallelism::new(2).with_sequential_threshold(0))
}

fn assert_backends_agree(
    g: &DataGraph,
    matrix: &dyn DistanceOracle,
    two_hop: &dyn DistanceOracle,
    ctx: &str,
) {
    let n = g.node_count() as u32;
    for x in (0..n).map(NodeId::new) {
        for y in (0..n).map(NodeId::new) {
            assert_eq!(
                matrix.nonempty_distance(g, x, y),
                two_hop.nonempty_distance(g, x, y),
                "{ctx}: backends disagree at ({x:?}, {y:?})"
            );
        }
    }
}

/// `AFF1` as a canonically ordered set.
fn sorted_aff(aff: &gpm::distance::AffectedPairs) -> Vec<(u32, u32, u16, u16)> {
    let mut v: Vec<_> = aff
        .iter()
        .map(|p| (p.source.0, p.sink.0, p.old, p.new))
        .collect();
    v.sort_unstable();
    v
}

/// Drives `script` unit-by-unit through both back-ends on `g`, asserting
/// identical `AFF1` and all-pairs agreement after every update; returns the
/// 2-hop backend's rebuild count.
fn drive(mut g: DataGraph, script: &[EdgeUpdate], label: &str) -> usize {
    let exec = exec();
    let mut matrix = OracleBackend::Matrix.build(&g, &exec);
    let mut two_hop = OracleBackend::TwoHop.build(&g, &exec);
    assert_backends_agree(
        &g,
        matrix.as_ref(),
        two_hop.as_ref(),
        &format!("{label}: initial"),
    );

    for (i, u) in script.iter().enumerate() {
        assert!(
            u.apply(&mut g),
            "{label}: script update {i} ({u}) must apply"
        );
        let (a, b) = u.endpoints();
        let (aff_m, aff_t) = if u.is_insert() {
            (
                matrix.apply_insert(&g, a, b, &exec),
                two_hop.apply_insert(&g, a, b, &exec),
            )
        } else {
            (
                matrix.apply_delete(&g, a, b, &exec),
                two_hop.apply_delete(&g, a, b, &exec),
            )
        };
        assert_eq!(
            sorted_aff(&aff_m),
            sorted_aff(&aff_t),
            "{label}: AFF1 diverged at update {i} ({u})"
        );
        assert_backends_agree(
            &g,
            matrix.as_ref(),
            two_hop.as_ref(),
            &format!("{label}: after update {i}"),
        );
    }
    assert_eq!(matrix.rebuilds(), 0, "the matrix never falls back");
    two_hop.rebuilds()
}

/// Cutting the chain at its head only changes the head's own row, and
/// nothing reaches the head — the one deletion the 2-hop backend can repair
/// fully in place.
#[test]
fn chain_cut_at_head_repairs_in_place() {
    let rebuilds = drive(deep_chain(64), &cut_chain_updates(64, 0), "chain k=0");
    assert_eq!(rebuilds, 0, "head cut must not trigger a rebuild");
}

/// Cutting the chain mid-way invalidates the distances of every upstream
/// node past the cut: decremental label repair is unsound there, so the
/// backend takes exactly one counted rebuild.
#[test]
fn chain_cut_midway_degrades_to_one_rebuild() {
    let rebuilds = drive(deep_chain(64), &cut_chain_updates(64, 31), "chain k=31");
    assert_eq!(rebuilds, 1, "mid-chain cut degrades to a single rebuild");
}

/// Deleting the star hub's out-edges one by one strands one leaf per
/// deletion while the remaining leaves still reach the hub — the worst
/// case: every single deletion degrades to a rebuild.
#[test]
fn star_hub_teardown_rebuilds_per_deletion() {
    const LEAVES: usize = 24;
    let rebuilds = drive(star(LEAVES), &delete_hub_updates(LEAVES), "star hub");
    assert_eq!(
        rebuilds, LEAVES,
        "every hub-edge deletion strands a leaf and forces a rebuild"
    );
}

/// Cutting a bridge between cliques disconnects everything upstream from
/// everything downstream — one rebuild, after which both back-ends agree
/// the components are mutually unreachable.
#[test]
fn clique_bridge_cut_rebuilds_once() {
    const CLIQUES: usize = 3;
    const SIZE: usize = 5;
    let rebuilds = drive(
        cliques_with_bridges(CLIQUES, SIZE),
        &cut_bridge_updates(CLIQUES, SIZE, 1),
        "bridge q=1",
    );
    assert_eq!(rebuilds, 1, "one bridge cut, one rebuild");
}

/// Severing a bowtie's out-wing strands one sink per deletion from the
/// waist *and* every source at once — like the star teardown, each edge
/// forces a rebuild, but here each cut invalidates `wing + 1` rows.
#[test]
fn bowtie_waist_severing_rebuilds_per_sink() {
    const WING: usize = 12;
    let rebuilds = drive(bowtie(WING), &sever_waist_updates(WING), "bowtie out-wing");
    assert_eq!(
        rebuilds, WING,
        "every waist→sink deletion strands a sink and forces a rebuild"
    );
}

/// Severing a single `source → waist` edge is the in-place case: the bowtie
/// sources have in-degree 0, so only the severed source's own row changes —
/// no rebuild, mirroring the chain's head cut.
#[test]
fn bowtie_source_cut_repairs_in_place() {
    const WING: usize = 12;
    let script = [EdgeUpdate::Delete(NodeId::new(3), NodeId::new(0))];
    let rebuilds = drive(bowtie(WING), &script, "bowtie in-wing");
    assert_eq!(rebuilds, 0, "a source cut repairs in place");
}

/// Insertions never rebuild, even on the high-diameter grid where a single
/// shortcut changes a quadratic number of distances.
#[test]
fn grid_shortcut_insertions_never_rebuild() {
    const ROWS: usize = 8;
    const COLS: usize = 8;
    let g = grid(ROWS, COLS);
    // Diagonal shortcuts (r, c) → (r+1, c+1) down the main diagonal: each
    // one halves a stretch of grid detours.
    let script: Vec<EdgeUpdate> = (0..ROWS.min(COLS) - 1)
        .map(|i| {
            EdgeUpdate::Insert(
                NodeId::new((i * COLS + i) as u32),
                NodeId::new(((i + 1) * COLS + i + 1) as u32),
            )
        })
        .collect();
    let rebuilds = drive(g, &script, "grid diagonal");
    assert_eq!(rebuilds, 0, "insert repair never falls back");
}

/// Worst-case scripts applied through the *batch* surface give the same
/// end state as unit application (the star teardown ends with every leaf
/// pair unreachable and hub→leaf gone, leaf→hub intact) — but pay **one**
/// rebuild for the whole batch where unit application paid one per edge.
#[test]
fn star_teardown_batch_matches_unit_semantics() {
    const LEAVES: usize = 12;
    let exec = exec();
    let g0 = star(LEAVES);
    let script = delete_hub_updates(LEAVES);

    let mut g = g0.clone();
    let mut oracle = OracleBackend::TwoHop.build(&g0, &exec);
    for u in &script {
        assert!(u.apply(&mut g));
    }
    oracle.apply_batch(&g, &script, &exec);

    let hub = NodeId::new(0);
    for leaf in (1..=LEAVES as u32).map(NodeId::new) {
        assert_eq!(
            oracle.nonempty_distance(&g, hub, leaf),
            None,
            "hub must no longer reach {leaf:?}"
        );
        assert_eq!(
            oracle.nonempty_distance(&g, leaf, hub),
            Some(1),
            "leaf→hub edges survive the teardown"
        );
    }
    assert_eq!(
        oracle.rebuilds(),
        1,
        "deferred batch deletions share a single end-of-batch rebuild"
    );
}

/// The bowtie waist teardown — E rebuild-forcing deletions in one batch —
/// records exactly **1** rebuild (was E before deferred batching), while the
/// batch `AFF1` still matches the matrix as a set and every pair agrees.
#[test]
fn bowtie_waist_teardown_batch_rebuilds_once() {
    const WING: usize = 12;
    let exec = exec();
    let g0 = bowtie(WING);
    let script = sever_waist_updates(WING);
    assert!(script.len() > 1, "the batch must contain E > 1 deletions");
    assert!(script.iter().all(|u| !u.is_insert()));

    let mut g = g0.clone();
    let mut matrix = OracleBackend::Matrix.build(&g0, &exec);
    let mut two_hop = OracleBackend::TwoHop.build(&g0, &exec);
    for u in &script {
        assert!(u.apply(&mut g));
    }
    let aff_m = matrix.apply_batch(&g, &script, &exec);
    let aff_t = two_hop.apply_batch(&g, &script, &exec);
    assert_eq!(
        sorted_aff(&aff_m),
        sorted_aff(&aff_t),
        "batch AFF1 diverged on the waist teardown"
    );
    assert_backends_agree(&g, matrix.as_ref(), two_hop.as_ref(), "after teardown");
    assert_eq!(
        two_hop.rebuilds(),
        1,
        "a batch of {} rebuild-forcing deletions pays exactly one rebuild",
        script.len()
    );
}
