//! Shared candidate computation for the isomorphism baselines.
//!
//! Both Ullmann and VF2 start from per-pattern-node candidate lists: data
//! nodes that satisfy the node predicate and have enough in/out degree to
//! host the pattern node's edges. This is the standard "label and degree
//! filter" pruning.

use gpm_exec::Executor;
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};

/// Candidate data nodes per pattern node (predicate + degree filter).
#[derive(Clone, Debug, Default)]
pub struct CandidateSets {
    per_pattern: Vec<Vec<NodeId>>,
}

impl CandidateSets {
    /// Computes the candidate sets for `pattern` over `graph` on the
    /// process-default [`gpm_exec::Parallelism`] policy.
    pub fn compute(pattern: &PatternGraph, graph: &DataGraph) -> Self {
        Self::compute_with(pattern, graph, &Executor::from_env())
    }

    /// Computes the candidate sets on an explicit executor: one task per
    /// pattern node (each scans all data nodes, so the work hint is `|V|`);
    /// results are merged in pattern-node order, so the outcome is identical
    /// at every thread count.
    pub fn compute_with(pattern: &PatternGraph, graph: &DataGraph, exec: &Executor) -> Self {
        let np = pattern.node_count();
        let per_pattern = exec.map_tasks(np, graph.node_count(), |ui| {
            let u = PatternNodeId::new(ui as u32);
            let need_out = pattern.out_degree(u);
            let need_in = pattern.in_degree(u);
            graph
                .nodes_satisfying(pattern.predicate(u))
                .filter(|&v| graph.out_degree(v) >= need_out && graph.in_degree(v) >= need_in)
                .collect()
        });
        CandidateSets { per_pattern }
    }

    /// The candidates of pattern node `u`.
    pub fn of(&self, u: PatternNodeId) -> &[NodeId] {
        &self.per_pattern[u.index()]
    }

    /// Whether some pattern node has no candidate at all (quick negative).
    pub fn any_empty(&self) -> bool {
        self.per_pattern.iter().any(Vec::is_empty)
    }

    /// Total number of candidate pairs.
    pub fn total(&self) -> usize {
        self.per_pattern.iter().map(Vec::len).sum()
    }

    /// A matching order for the pattern nodes: fewest candidates first, ties
    /// broken towards nodes connected to already-ordered ones (a light-weight
    /// version of the usual "most constrained first" heuristics).
    pub fn matching_order(&self, pattern: &PatternGraph) -> Vec<PatternNodeId> {
        let n = pattern.node_count();
        let mut order: Vec<PatternNodeId> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        for _ in 0..n {
            let mut best: Option<(usize, usize, PatternNodeId)> = None;
            for u in pattern.node_ids() {
                if placed[u.index()] {
                    continue;
                }
                let connected = pattern
                    .children(u)
                    .chain(pattern.parents(u))
                    .filter(|w| placed[w.index()])
                    .count();
                // Prefer connected-to-placed, then fewest candidates.
                let key = (usize::MAX - connected, self.of(u).len());
                match best {
                    Some((bc, bl, _)) if (key.0, key.1) >= (bc, bl) => {}
                    _ => best = Some((key.0, key.1, u)),
                }
            }
            let (_, _, chosen) = best.expect("some node remains");
            placed[chosen.index()] = true;
            order.push(chosen);
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::{Attributes, DataGraphBuilder, PatternGraphBuilder};

    #[test]
    fn predicate_and_degree_filter() {
        let (g, names) = DataGraphBuilder::new()
            .labeled_node("A")
            .node("a2", Attributes::labeled("A"))
            .labeled_node("B")
            .edge("A", "B")
            .build()
            .unwrap();
        let (p, pids) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .build()
            .unwrap();
        let c = CandidateSets::compute(&p, &g);
        // a2 has out-degree 0 so it is filtered out for pattern node A.
        assert_eq!(c.of(pids["A"]), &[names["A"]]);
        assert_eq!(c.of(pids["B"]), &[names["B"]]);
        assert!(!c.any_empty());
        assert_eq!(c.total(), 2);
    }

    #[test]
    fn any_empty_detects_impossible_patterns() {
        let (g, _) = DataGraphBuilder::new().labeled_node("A").build().unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("Z")
            .build()
            .unwrap();
        let c = CandidateSets::compute(&p, &g);
        assert!(c.any_empty());
    }

    #[test]
    fn matching_order_visits_every_node_once_and_prefers_constrained() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B")
            .edge("B", "C")
            .build()
            .unwrap();
        let (p, pids) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B", 1u32)
            .edge("B", "C", 1u32)
            .build()
            .unwrap();
        let c = CandidateSets::compute(&p, &g);
        let order = c.matching_order(&p);
        assert_eq!(order.len(), 3);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        // After the first node, every next node is connected to a placed one.
        for (i, &u) in order.iter().enumerate().skip(1) {
            let connected = p
                .children(u)
                .chain(p.parents(u))
                .any(|w| order[..i].contains(&w));
            assert!(connected, "{u} not connected to already placed nodes");
        }
        let _ = pids;
    }
}
