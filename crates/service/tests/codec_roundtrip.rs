//! Property tests for the durability codecs: WAL frames/records and
//! snapshot manifests.
//!
//! Two properties, each over arbitrary inputs:
//!
//! * **encode ∘ decode = id** — any record or manifest survives a byte
//!   round-trip exactly (the recovery path's foundation);
//! * **any single-byte corruption is rejected** — the CRC-32 envelope
//!   covers the length prefix and the payload, and a one-byte XOR is a
//!   burst error of at most 8 bits, which CRC-32 always detects; the
//!   decoders must therefore never accept a damaged image.

use gpm_core::MatchRelation;
use gpm_distance::EdgeUpdate;
use gpm_graph::{NodeId, PatternGraph, PatternGraphBuilder};
use gpm_incremental::MatchStateSnapshot;
use gpm_service::snapshot::{decode_manifest, encode_manifest};
use gpm_service::wal::{
    decode_frame_exact, decode_record_exact, encode_frame, encode_record, read_wal_bytes, WAL_MAGIC,
};
use gpm_service::{GraphFormat, Manifest, QuerySnapshot, SegmentMeta, WalOp, WalRecord};
use proptest::prelude::*;

/// A chain pattern with `n` nodes and per-edge bound `bound` — enough shape
/// diversity for a codec test without simulating anything.
fn chain_pattern(n: usize, bound: u32) -> PatternGraph {
    let mut b = PatternGraphBuilder::new();
    for i in 0..n {
        b = b.labeled_node(format!("l{i}"));
    }
    for i in 1..n {
        b = b.edge(format!("l{}", i - 1), format!("l{i}"), bound);
    }
    let (p, _) = b.build().expect("chain pattern is well-formed");
    p
}

fn arb_update() -> impl Strategy<Value = EdgeUpdate> {
    (0u32..2, 0u32..500, 0u32..500).prop_map(|(ins, a, b)| {
        if ins == 0 {
            EdgeUpdate::Insert(NodeId::new(a), NodeId::new(b))
        } else {
            EdgeUpdate::Delete(NodeId::new(a), NodeId::new(b))
        }
    })
}

/// Every [`WalOp`] shape, tag-selected (the vendored proptest has no
/// `prop_oneof`).
fn arb_op() -> impl Strategy<Value = WalOp> {
    (
        0u32..6,
        collection::vec(arb_update(), 0..16),
        (1usize..5, 1u32..4),
        0u64..1_000_000,
    )
        .prop_map(|(tag, updates, (n, bound), id)| match tag {
            0 => WalOp::Batch(updates),
            1 => WalOp::Register(chain_pattern(n, bound)),
            2 => WalOp::Deregister(id),
            3 => WalOp::Suspend(id),
            4 => WalOp::Resume(id),
            _ => WalOp::Read(id),
        })
}

fn arb_record() -> impl Strategy<Value = WalRecord> {
    (0u64..1_000_000_000, arb_op()).prop_map(|(seq, op)| WalRecord { seq, op })
}

fn arb_relation() -> impl Strategy<Value = MatchRelation> {
    collection::vec(collection::vec(0u32..64, 0..8), 0..4).prop_map(|sets| {
        MatchRelation::from_sets(
            sets.into_iter()
                .map(|s| s.into_iter().map(NodeId::new).collect())
                .collect(),
        )
    })
}

fn arb_state() -> impl Strategy<Value = MatchStateSnapshot> {
    (
        0usize..64,
        collection::vec(collection::vec(0u32..64, 0..8), 0..4),
        collection::vec(collection::vec(0u32..64, 0..8), 0..4),
    )
        .prop_map(|(nodes, satisfies, mat)| MatchStateSnapshot {
            nodes,
            satisfies,
            mat,
        })
}

fn arb_query() -> impl Strategy<Value = QuerySnapshot> {
    (
        (0u64..1_000_000, 0u32..4),
        (1usize..5, 1u32..4),
        arb_state(),
        arb_relation(),
    )
        .prop_map(|((id, flags), (n, bound), state, emitted)| QuerySnapshot {
            id,
            pattern: chain_pattern(n, bound),
            active: flags & 1 != 0,
            state: if flags & 2 != 0 { Some(state) } else { None },
            emitted,
        })
}

fn arb_manifest() -> impl Strategy<Value = Manifest> {
    (
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
        0u32..4,
        collection::vec(
            (
                collection::vec(97u8..123, 1..9),
                0u64..1_000_000,
                0u32..1 << 30,
            ),
            0..3,
        ),
        collection::vec(arb_query(), 0..3),
    )
        .prop_map(
            |((epoch, next_seq, next_query_id), flags, segs, queries)| Manifest {
                version: 1,
                epoch,
                next_seq,
                backend: if flags & 1 != 0 { "matrix" } else { "two-hop" }.into(),
                next_query_id,
                graph_format: if flags & 2 != 0 {
                    GraphFormat::Dataset
                } else {
                    GraphFormat::Json
                },
                segments: segs
                    .into_iter()
                    .map(|(name, len, crc)| SegmentMeta {
                        file: String::from_utf8(name).expect("ascii name"),
                        len,
                        crc,
                    })
                    .collect(),
                queries,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode = id for raw frames, over arbitrary payload bytes.
    #[test]
    fn prop_frame_roundtrip(payload in collection::vec(0u8..255, 0..512)) {
        let frame = encode_frame(&payload).expect("encodable");
        prop_assert_eq!(decode_frame_exact(&frame).expect("decodable"), &payload[..]);
    }

    /// Any single-byte XOR anywhere in a frame is rejected.
    #[test]
    fn prop_frame_rejects_single_byte_corruption(
        payload in collection::vec(0u8..255, 0..128),
        pos_raw in 0usize..1_000_000,
        mask in 1u32..256,
    ) {
        let mut frame = encode_frame(&payload).expect("encodable");
        let pos = pos_raw % frame.len();
        frame[pos] ^= mask as u8;
        prop_assert!(
            decode_frame_exact(&frame).is_err(),
            "corruption at byte {} (mask {:#04x}) must not decode", pos, mask
        );
    }

    /// encode ∘ decode = id for WAL records across every op shape.
    #[test]
    fn prop_wal_record_roundtrip(record in arb_record()) {
        let frame = encode_record(&record).expect("encodable");
        prop_assert_eq!(decode_record_exact(&frame).expect("decodable"), record);
    }

    /// Any single-byte XOR anywhere in an encoded record is rejected.
    #[test]
    fn prop_wal_record_rejects_single_byte_corruption(
        record in arb_record(),
        pos_raw in 0usize..1_000_000,
        mask in 1u32..256,
    ) {
        let mut frame = encode_record(&record).expect("encodable");
        let pos = pos_raw % frame.len();
        frame[pos] ^= mask as u8;
        prop_assert!(
            decode_record_exact(&frame).is_err(),
            "corruption at byte {} (mask {:#04x}) must not decode", pos, mask
        );
    }

    /// A full WAL image of consecutive records reads back exactly, with no
    /// torn tail.
    #[test]
    fn prop_wal_image_roundtrip(
        first_seq in 0u64..1_000_000,
        ops in collection::vec(arb_op(), 0..6),
    ) {
        let mut image = WAL_MAGIC.to_vec();
        let records: Vec<WalRecord> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| WalRecord { seq: first_seq + i as u64, op })
            .collect();
        for r in &records {
            image.extend(encode_record(r).expect("encodable"));
        }
        let outcome = read_wal_bytes(&image).expect("readable");
        prop_assert_eq!(outcome.records, records);
        prop_assert_eq!(outcome.valid_len, image.len() as u64);
        prop_assert_eq!(outcome.torn_bytes, 0);
    }

    /// encode ∘ decode = id for snapshot manifests.
    #[test]
    fn prop_manifest_roundtrip(manifest in arb_manifest()) {
        let bytes = encode_manifest(&manifest).expect("encodable");
        prop_assert_eq!(decode_manifest(&bytes).expect("decodable"), manifest);
    }

    /// Any single-byte XOR anywhere in an encoded manifest — magic, length,
    /// checksum or payload — is rejected.
    #[test]
    fn prop_manifest_rejects_single_byte_corruption(
        manifest in arb_manifest(),
        pos_raw in 0usize..1_000_000,
        mask in 1u32..256,
    ) {
        let mut bytes = encode_manifest(&manifest).expect("encodable");
        let pos = pos_raw % bytes.len();
        bytes[pos] ^= mask as u8;
        prop_assert!(
            decode_manifest(&bytes).is_err(),
            "corruption at byte {} (mask {:#04x}) must not decode", pos, mask
        );
    }
}
