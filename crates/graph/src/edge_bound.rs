//! Edge bounds of pattern graphs.
//!
//! `f_e(u, u')` is either a positive integer `k` — the pattern edge must be
//! witnessed by a non-empty path of length `<= k` in the data graph — or the
//! symbol `*`, in which case the path length is unbounded (Section 2.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The bound `f_e(u, u')` carried by a pattern edge.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeBound {
    /// A bounded edge: witnessed by a non-empty path of at most `k` hops
    /// (`k >= 1`).
    Hops(u32),
    /// An unbounded edge (`*`): witnessed by any non-empty path.
    Unbounded,
}

impl EdgeBound {
    /// The "traditional" bound of 1 hop — edge-to-edge mapping as in plain
    /// graph simulation and subgraph isomorphism.
    pub const ONE: EdgeBound = EdgeBound::Hops(1);

    /// Whether a witness path of length `len` (in hops) satisfies this bound.
    ///
    /// Witness paths must be non-empty, so `len == 0` never satisfies any
    /// bound.
    #[inline]
    pub fn admits(self, len: u32) -> bool {
        if len == 0 {
            return false;
        }
        match self {
            EdgeBound::Hops(k) => len <= k,
            EdgeBound::Unbounded => true,
        }
    }

    /// The numeric bound if this edge is bounded.
    pub fn hops(self) -> Option<u32> {
        match self {
            EdgeBound::Hops(k) => Some(k),
            EdgeBound::Unbounded => None,
        }
    }

    /// Whether the bound is `*`.
    pub fn is_unbounded(self) -> bool {
        matches!(self, EdgeBound::Unbounded)
    }

    /// Returns a bound that admits every path this one admits and every path
    /// `other` admits (the pointwise maximum). Useful for pattern rewriting.
    pub fn loosest(self, other: EdgeBound) -> EdgeBound {
        match (self, other) {
            (EdgeBound::Unbounded, _) | (_, EdgeBound::Unbounded) => EdgeBound::Unbounded,
            (EdgeBound::Hops(a), EdgeBound::Hops(b)) => EdgeBound::Hops(a.max(b)),
        }
    }
}

impl Default for EdgeBound {
    /// The paper omits `f_e(u, u')` when it is 1; the default mirrors that.
    fn default() -> Self {
        EdgeBound::ONE
    }
}

impl From<u32> for EdgeBound {
    fn from(k: u32) -> Self {
        EdgeBound::Hops(k)
    }
}

impl fmt::Display for EdgeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeBound::Hops(k) => write!(f, "{k}"),
            EdgeBound::Unbounded => write!(f, "*"),
        }
    }
}

impl FromStr for EdgeBound {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s == "*" {
            return Ok(EdgeBound::Unbounded);
        }
        match s.parse::<u32>() {
            Ok(0) => Err("edge bound must be >= 1".to_string()),
            Ok(k) => Ok(EdgeBound::Hops(k)),
            Err(_) => Err(format!("cannot parse edge bound `{s}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_respects_bound() {
        let b3 = EdgeBound::Hops(3);
        assert!(!b3.admits(0));
        assert!(b3.admits(1));
        assert!(b3.admits(3));
        assert!(!b3.admits(4));
    }

    #[test]
    fn unbounded_admits_any_nonempty_path() {
        assert!(!EdgeBound::Unbounded.admits(0));
        assert!(EdgeBound::Unbounded.admits(1));
        assert!(EdgeBound::Unbounded.admits(1_000_000));
    }

    #[test]
    fn one_hop_is_edge_to_edge() {
        assert!(EdgeBound::ONE.admits(1));
        assert!(!EdgeBound::ONE.admits(2));
        assert_eq!(EdgeBound::default(), EdgeBound::ONE);
    }

    #[test]
    fn accessors() {
        assert_eq!(EdgeBound::Hops(5).hops(), Some(5));
        assert_eq!(EdgeBound::Unbounded.hops(), None);
        assert!(EdgeBound::Unbounded.is_unbounded());
        assert!(!EdgeBound::Hops(2).is_unbounded());
    }

    #[test]
    fn loosest_combination() {
        assert_eq!(
            EdgeBound::Hops(2).loosest(EdgeBound::Hops(5)),
            EdgeBound::Hops(5)
        );
        assert_eq!(
            EdgeBound::Hops(2).loosest(EdgeBound::Unbounded),
            EdgeBound::Unbounded
        );
    }

    #[test]
    fn parse_and_display() {
        assert_eq!("3".parse::<EdgeBound>().unwrap(), EdgeBound::Hops(3));
        assert_eq!("*".parse::<EdgeBound>().unwrap(), EdgeBound::Unbounded);
        assert_eq!(" 7 ".parse::<EdgeBound>().unwrap(), EdgeBound::Hops(7));
        assert!("0".parse::<EdgeBound>().is_err());
        assert!("-1".parse::<EdgeBound>().is_err());
        assert!("abc".parse::<EdgeBound>().is_err());
        assert_eq!(EdgeBound::Hops(4).to_string(), "4");
        assert_eq!(EdgeBound::Unbounded.to_string(), "*");
    }

    #[test]
    fn from_u32() {
        assert_eq!(EdgeBound::from(9u32), EdgeBound::Hops(9));
    }
}
