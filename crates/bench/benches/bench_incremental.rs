//! Criterion micro-benchmarks for incremental matching: `IncMatch` on small
//! batches vs recomputing `Match` (including the distance matrix), the
//! micro view behind Figs. 6(i)–(k).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm::{
    bounded_simulation_with_oracle, random_graph, random_updates, DistanceMatrix,
    IncrementalMatcher, PatternGraphBuilder, Predicate, RandomGraphConfig, UpdateStreamConfig,
};

fn dag_pattern() -> gpm::PatternGraph {
    let (p, _) = PatternGraphBuilder::new()
        .node("x", Predicate::label("a0"))
        .node("y", Predicate::label("a1"))
        .node("z", Predicate::label("a2"))
        .edge("x", "y", 2u32)
        .edge("y", "z", 3u32)
        .build()
        .unwrap();
    p
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    let graph = random_graph(&RandomGraphConfig::new(1_500, 4_500, 10).with_seed(6));
    let base = IncrementalMatcher::new(dag_pattern(), graph.clone());

    let mut group = c.benchmark_group("incremental/batch-size");
    group.sample_size(10);
    for delta in [8usize, 32, 128] {
        let updates = random_updates(&graph, &UpdateStreamConfig::mixed(delta).with_seed(9));
        group.bench_with_input(BenchmarkId::new("IncMatch", delta), &updates, |b, ups| {
            b.iter(|| {
                let mut matcher = base.clone();
                matcher.apply_batch(ups).unwrap()
            });
        });
        group.bench_with_input(
            BenchmarkId::new("Match recompute", delta),
            &updates,
            |b, ups| {
                b.iter(|| {
                    let mut g = graph.clone();
                    for u in ups {
                        u.apply(&mut g);
                    }
                    let matrix = DistanceMatrix::build(&g);
                    bounded_simulation_with_oracle(base.pattern(), &g, &matrix)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_batch);
criterion_main!(benches);
