//! # gpm-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (Section 5 + appendix). Each experiment is a binary in
//! `src/bin/` printing a plain-text table with one row per x-axis point of
//! the corresponding figure; Criterion micro-benchmarks for the ablation
//! study live in `benches/`.
//!
//! All binaries accept:
//!
//! * `--scale <f>` — fraction of the paper's dataset sizes to generate
//!   (default keeps every experiment laptop-friendly; `--scale 1.0` uses the
//!   paper's sizes);
//! * `--seed <n>` — RNG seed for graphs, patterns and update streams;
//! * `--patterns <n>` — number of random patterns to average over where the
//!   paper averages over 20;
//! * `--threads <n>` — worker threads for the `gpm-exec` parallel runtime
//!   (0 = process default, i.e. `GPM_THREADS` or all available cores);
//!   running `exp_fig6fgh_scalability` at 1, 2, 4, 8 sweeps the core-scaling
//!   curves;
//! * `--oracle matrix|two-hop` — the distance backend every matcher and
//!   service runs on (default `GPM_ORACLE`, i.e. the paper's matrix when
//!   unset); the parsed value is propagated back to `GPM_ORACLE` so it
//!   reaches every library entry point;
//! * `--dataset-dir <path>` / `--dataset <name>` — run on real on-disk
//!   datasets (`<name>.edges` SNAP edge list + optional `<name>.attrs`
//!   typed attribute CSV, see `gpm::graph::dataset`) instead of the
//!   synthetic stand-ins. `--dataset-dir fixtures` uses the checked-in
//!   mini-dataset; pointing it at a directory of downloaded SNAP crawls
//!   reproduces Fig. 6(e)/Table 1 against the real data;
//! * `--cutoff-ms <n>` — wall-clock budget per curve for baselines with
//!   exponential worst cases (VF2 in the extended Fig. 6(b) sweep);
//! * `--obs` / `--obs-out <path>` — enable the `gpm-obs` observability layer
//!   (equivalent to `GPM_OBS=1` / `GPM_OBS_OUT=<path>`): `svc_continuous`
//!   and `svc_recovery` append a `Registry::report()` dump, and `--obs-out`
//!   additionally streams JSONL events plus a final registry snapshot.
//!
//! ## Paper map
//!
//! | figure/table | binary |
//! |--------------|--------|
//! | Table 1 | `exp_table1_datasets` |
//! | Exp-1 (match quality) | `exp1_effectiveness` |
//! | Fig. 6(b)–(d) | `exp_fig6b_match_vs_vf2`, `exp_fig6c_match_counts`, `exp_fig6d_vary_edges` |
//! | Fig. 6(e)–(h) | `exp_fig6e_real_datasets`, `exp_fig6fgh_scalability` |
//! | Fig. 6(i)–(k) | `exp_fig6i_batch_updates`, `exp_fig6j_deletions`, `exp_fig6k_insertions` |
//! | Fig. 9 | `exp_fig9_vary_bound` |
//! | `\|AFF\|`, `\|Gr\|` stats (Section 5) | `exp_stats_aff_gr` |
//! | service layer (beyond the paper) | `svc_continuous` — shared-AFF amortisation of `gpm-service` vs independent matchers |
//! | oracle scaling (beyond the paper) | `exp_oracle_scale` — match + update a Fig. 6-class graph on the 2-hop backend where the `\|V\|²` matrix cannot allocate |
//!
//! See BENCHMARKS.md at the repository root for the measurement protocol and
//! the recorded result batches.
//!
//! ## Example
//!
//! The library pieces are reusable outside the binaries — timing helpers,
//! the [`Subject`] wrapper (graph + shared distance matrix) and plain-text
//! [`Table`] rendering:
//!
//! ```
//! use gpm_bench::{fmt_ms, time, Table};
//!
//! let (sum, elapsed) = time(|| (0..1000u64).sum::<u64>());
//! assert_eq!(sum, 499_500);
//!
//! let mut table = Table::new("demo", &["n", "elapsed (ms)"]);
//! table.row(vec!["1000".into(), fmt_ms(elapsed)]);
//! assert_eq!(table.len(), 1);
//! ```

use gpm::{DataGraph, DistanceMatrix, Executor, Parallelism, PatternGraph};
use std::time::{Duration, Instant};

pub mod args;
pub mod incremental_exp;
pub mod table;

pub use args::{load_source_or_exit, HarnessArgs, LoadgenArgs};
pub use incremental_exp::{dag_pattern, run_update_experiment, UpdateMix};
pub use table::Table;

/// Measures the wall-clock time of a closure, returning its result as well.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Reads a `gpm::obs` JSONL sink back and requires every non-empty line to
/// parse as a JSON object, exiting the process with a message otherwise (the
/// experiment binaries' shared error path). Returns the object count — the
/// structured output is only useful if downstream tooling can consume it
/// blind, so the binaries fail loudly instead of shipping a corrupt sink.
pub fn obs_jsonl_check_or_exit(path: &std::path::Path) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs JSONL self-check: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let mut lines = 0usize;
    for (i, line) in text.lines().filter(|l| !l.is_empty()).enumerate() {
        match serde_json::from_str::<serde::Value>(line) {
            Ok(serde::Value::Map(_)) => lines += 1,
            Ok(other) => {
                eprintln!(
                    "obs JSONL self-check: line {} is not an object: {other:?}",
                    i + 1
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("obs JSONL self-check: line {} does not parse: {e}", i + 1);
                std::process::exit(1);
            }
        }
    }
    lines
}

/// Exact nearest-rank percentile over a sample of durations: the smallest
/// value whose rank is at least `ceil(q * n)`. The latency tables report
/// p50/p99/p999 from full per-batch samples with this helper, which also
/// serves as ground truth against the log-bucketed `gpm::obs` histograms
/// (≤ 1/16 relative error).
///
/// Returns `Duration::ZERO` on an empty sample.
pub fn percentile_exact(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Formats a duration in milliseconds with a sensible precision for tables.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.1}")
    } else {
        format!("{ms:.3}")
    }
}

/// The standard experimental subject: a data graph plus its distance matrix
/// (which the paper precomputes once and shares across patterns).
pub struct Subject {
    /// The data graph under test.
    pub graph: DataGraph,
    /// Its all-pairs non-empty distance matrix.
    pub matrix: DistanceMatrix,
    /// How long the matrix construction took (reported separately, as in
    /// Fig. 6(b)'s "Match(Total)" vs "Match(Match Process)" curves).
    pub matrix_build_time: Duration,
}

impl Subject {
    /// Builds the subject for a data graph, timing the matrix construction
    /// (process-default [`Parallelism`] policy).
    pub fn new(graph: DataGraph) -> Self {
        Self::with_parallelism(graph, Parallelism::from_env())
    }

    /// Builds the subject with an explicit [`Parallelism`] policy (the
    /// experiment binaries pass `--threads` through here).
    pub fn with_parallelism(graph: DataGraph, parallelism: Parallelism) -> Self {
        let exec = Executor::new(parallelism);
        let (matrix, matrix_build_time) = time(|| DistanceMatrix::build_with(&graph, &exec));
        Subject {
            graph,
            matrix,
            matrix_build_time,
        }
    }
}

/// Generates the `count` evaluation patterns for a graph at the paper's
/// `P(|V_p|, |E_p|, k)` parameters, varying the seed.
pub fn patterns_for(
    graph: &DataGraph,
    nodes: usize,
    edges: usize,
    bound: u32,
    count: usize,
    base_seed: u64,
) -> Vec<PatternGraph> {
    (0..count)
        .map(|i| {
            let cfg = gpm::PatternGenConfig::new(nodes, edges, bound)
                .with_seed(base_seed.wrapping_mul(1_000_003).wrapping_add(i as u64));
            gpm::generate_pattern(graph, &cfg).0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm::{random_graph, RandomGraphConfig};

    #[test]
    fn time_and_format() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        assert_eq!(fmt_ms(Duration::from_millis(250)), "250");
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.5");
        assert_eq!(fmt_ms(Duration::from_micros(90)), "0.090");
    }

    #[test]
    fn percentile_exact_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_exact(&ms, 0.50), Duration::from_millis(50));
        assert_eq!(percentile_exact(&ms, 0.99), Duration::from_millis(99));
        assert_eq!(percentile_exact(&ms, 0.999), Duration::from_millis(100));
        assert_eq!(percentile_exact(&ms, 1.0), Duration::from_millis(100));
        assert_eq!(percentile_exact(&[], 0.5), Duration::ZERO);
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile_exact(&one, 0.01), Duration::from_millis(7));
    }

    #[test]
    fn subject_builds_matrix() {
        let g = random_graph(&RandomGraphConfig::new(50, 120, 5).with_seed(1));
        let s = Subject::new(g);
        assert_eq!(s.matrix.node_count(), 50);
        assert_eq!(s.graph.node_count(), 50);
    }

    #[test]
    fn patterns_for_produces_distinct_patterns() {
        let g = random_graph(&RandomGraphConfig::new(100, 300, 8).with_seed(2));
        let ps = patterns_for(&g, 4, 4, 3, 5, 7);
        assert_eq!(ps.len(), 5);
        for p in &ps {
            assert_eq!(p.node_count(), 4);
        }
    }
}
