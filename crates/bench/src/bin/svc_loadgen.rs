//! `svc_loadgen` — replayable network load driver for the `gpm-net` front
//! end: one `MatchService` served on loopback, K registered queries × M
//! wire subscribers per query, driven by a deterministic timestamped update
//! stream at a target rate.
//!
//! Per (K, M) cell the driver binds a fresh server, registers K patterns
//! over an admin connection, connects K×M subscriber connections, then
//! paces [`gpm::timed_update_stream`] batches to their scheduled instants.
//! Every subscriber thread stamps each received delta against the driver's
//! send instant for that epoch, so the reported p50/p99/p999 is true
//! **end-to-end delta latency**: apply request → framed delta decoded on
//! the subscriber's socket. The table reports the achieved sustained rate
//! next to the target — when the service cannot keep up, the driver falls
//! behind its schedule and the gap is visible, never hidden.
//!
//! With `--obs` the latencies also feed the `loadgen` obs scope (log-bucket
//! histogram + per-cell events); `--obs-out <path>` streams JSONL and the
//! run self-checks that every line parses.

use gpm::net::{NetClient, NetServer, ServerOptions};
use gpm::{timed_update_stream, MatchService, PatternGraph, TimedStreamConfig};
use gpm_bench::{
    dag_pattern, fmt_ms, load_source_or_exit, percentile_exact, time, LoadgenArgs, Table,
};
use parking_lot::Mutex;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct CellOutcome {
    achieved_rate: f64,
    deltas_received: usize,
    latencies: Vec<Duration>,
}

/// Runs one (K queries, M subscribers per query) cell against a fresh
/// server and returns the end-to-end latency sample.
fn run_cell(graph: &gpm::DataGraph, k: usize, m: usize, args: &LoadgenArgs) -> CellOutcome {
    let svc = MatchService::with_backend(
        graph.clone(),
        args.harness.oracle,
        args.harness.parallelism(),
    );
    let server = NetServer::bind("127.0.0.1:0", svc, ServerOptions::default())
        .expect("bind loopback listener");
    let addr = server.local_addr().expect("local addr");
    let handle = server.spawn().expect("spawn accept loop");

    let mut admin = NetClient::connect(addr).expect("admin connect");
    let patterns: Vec<PatternGraph> = (0..k)
        .map(|i| dag_pattern(graph, 4, 4, 3, args.harness.seed + i as u64 * 131))
        .collect();
    let queries: Vec<u64> = patterns
        .iter()
        .map(|p| admin.register(p).expect("register"))
        .collect();
    // Epoch base after registration: batch i will carry epoch e0 + i + 1.
    let e0 = NetClient::connect(addr)
        .expect("probe connect")
        .epoch_at_connect();

    let stream = timed_update_stream(
        graph,
        &TimedStreamConfig::mixed(args.batches, args.batch_size, args.rate)
            .with_seed(args.harness.seed + 77),
    );

    // Send instants, indexed by batch: slot i is filled immediately before
    // batch i's apply request leaves, so a subscriber can never observe a
    // delta whose slot is still empty.
    let send_at: Arc<Vec<Mutex<Option<Instant>>>> =
        Arc::new((0..args.batches).map(|_| Mutex::new(None)).collect());
    // Subscribers subscribe first (snapshot streams included), then everyone
    // releases the barrier together and the driver starts the clock.
    let barrier = Arc::new(Barrier::new(k * m + 1));

    let mut workers = Vec::with_capacity(k * m);
    for &q in &queries {
        for _ in 0..m {
            let barrier = Arc::clone(&barrier);
            let send_at = Arc::clone(&send_at);
            workers.push(std::thread::spawn(move || {
                subscriber_loop(addr, q, e0, &barrier, &send_at)
            }));
        }
    }

    barrier.wait();
    let start = Instant::now();
    for (i, batch) in stream.iter().enumerate() {
        let due = Duration::from_nanos(batch.at_ns);
        while start.elapsed() < due {
            std::thread::sleep(due - start.elapsed());
        }
        *send_at[i].lock() = Some(Instant::now());
        admin.apply(&batch.updates).expect("apply batch");
    }
    let elapsed = start.elapsed();

    // Deregistering every query ends each stream with an explicit
    // QueryClosed marker; the subscriber threads drain and exit.
    for &q in &queries {
        admin.deregister(q).expect("deregister");
    }
    let mut latencies = Vec::new();
    let mut deltas_received = 0usize;
    for w in workers {
        let worker_lat = w.join().expect("subscriber thread");
        deltas_received += worker_lat.len();
        latencies.extend(worker_lat);
    }
    handle.shutdown();

    let total_updates = args.batches * args.batch_size;
    CellOutcome {
        achieved_rate: total_updates as f64 / elapsed.as_secs_f64(),
        deltas_received,
        latencies,
    }
}

/// One wire subscriber: subscribe, release the start barrier, then stamp
/// every post-start delta against the driver's send instant for its epoch.
fn subscriber_loop(
    addr: SocketAddr,
    query: u64,
    e0: u64,
    barrier: &Barrier,
    send_at: &[Mutex<Option<Instant>>],
) -> Vec<Duration> {
    let hist = gpm::obs::registry()
        .scope("loadgen")
        .histogram("e2e_delta_ns");
    let mut sub = NetClient::connect(addr)
        .expect("subscriber connect")
        .subscribe(query)
        .expect("subscribe");
    barrier.wait();
    let mut latencies = Vec::new();
    loop {
        match sub.next() {
            Ok(Some(delta)) => {
                if delta.epoch <= e0 {
                    continue; // the subscribe-time snapshot
                }
                let idx = (delta.epoch - e0 - 1) as usize;
                let sent = send_at
                    .get(idx)
                    .and_then(|slot| *slot.lock())
                    .expect("delta for a batch the driver sent");
                let e2e = sent.elapsed();
                hist.record_duration(e2e);
                latencies.push(e2e);
            }
            Ok(None) => break, // explicit end-of-stream (QueryClosed)
            Err(e) => {
                eprintln!("subscriber for q{query}: stream error: {e}");
                break;
            }
        }
    }
    latencies
}

fn main() {
    let args = LoadgenArgs::from_env();
    let source = args.harness.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args.harness);

    println!(
        "{}: |V| = {}, |E| = {}, {} batches x {} updates at {:.0} updates/s, {} threads, {} oracle\n",
        source.name(),
        graph.node_count(),
        graph.edge_count(),
        args.batches,
        args.batch_size,
        args.rate,
        args.harness.parallelism().threads(),
        args.harness.oracle.name(),
    );

    let mut table = Table::new(
        "svc_loadgen: sustained rate and end-to-end delta latency over the wire",
        &[
            "K queries",
            "M subs/query",
            "target up/s",
            "achieved up/s",
            "deltas",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
        ],
    );

    for &k in &args.queries {
        for &m in &args.subscribers {
            let (cell, wall) = time(|| run_cell(&graph, k, m, &args));
            gpm::obs::emit_event(
                "loadgen",
                "cell",
                &[
                    ("k", k as u64),
                    ("m", m as u64),
                    ("deltas", cell.deltas_received as u64),
                    ("achieved_ups", cell.achieved_rate as u64),
                    ("wall_ms", wall.as_millis() as u64),
                ],
                &[("oracle", args.harness.oracle.name())],
            );
            table.row(vec![
                k.to_string(),
                m.to_string(),
                format!("{:.0}", args.rate),
                format!("{:.0}", cell.achieved_rate),
                cell.deltas_received.to_string(),
                fmt_ms(percentile_exact(&cell.latencies, 0.50)),
                fmt_ms(percentile_exact(&cell.latencies, 0.99)),
                fmt_ms(percentile_exact(&cell.latencies, 0.999)),
            ]);
        }
    }
    table.print();
    println!(
        "\nLatency is end-to-end: apply request sent -> CRC-framed delta decoded on the\n\
         subscriber's socket. `achieved up/s` below target means the service could not\n\
         keep the batch schedule; the driver never drops or reorders batches to hide it."
    );

    if args.harness.obs {
        println!("\n{}", gpm::obs::registry().report());
        if let Some(path) = &args.harness.obs_out {
            gpm::obs::registry().export_snapshot();
            let lines = gpm_bench::obs_jsonl_check_or_exit(path);
            println!("obs JSONL OK ({lines} lines, {})", path.display());
        }
    }
}
