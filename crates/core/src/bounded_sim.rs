//! The cubic-time `Match` algorithm (Fig. 4 of the paper).
//!
//! Given a pattern `P = (V_p, E_p, f_v, f_e)` and a data graph
//! `G = (V, E, f_A)`, `Match` computes the unique **maximum** bounded
//! simulation relation `S ⊆ V_p × V` (or `∅` when `P ⋬ G`) in
//! `O(|V||E| + |E_p||V|² + |V_p||V|)` time.
//!
//! ## Implementation
//!
//! The structure follows the paper: initial candidate sets `mat(u)` from the
//! node predicates, then iterative removal of nodes that cannot witness some
//! pattern edge, propagated upward until a fixpoint. Two representation
//! choices differ from the pseudo-code but keep the bound:
//!
//! * `anc`/`desc` sets are not materialised; the distance oracle answers the
//!   `len(x/.../x') <= f_e(u', u)` test in `O(1)` (distance matrix) — this is
//!   exactly the information the `anc`/`desc` sets encode;
//! * the `premv` bookkeeping is realised with per-(pattern-edge, data-node)
//!   **witness counters**: `cnt[e][x]` is the number of nodes currently in
//!   `mat(target(e))` that `x` can reach within the bound of `e`. When a node
//!   `y` is removed from `mat(u)`, the counters of candidate parents that can
//!   reach `y` are decremented; hitting zero removes the parent candidate —
//!   the same `O(|E_p||V|²)` propagation the paper obtains with `premv`.

use crate::match_relation::MatchRelation;
use gpm_distance::{DistanceMatrix, DistanceOracle};
use gpm_graph::{DataGraph, NodeId, PatternGraph, PatternNodeId};

/// Counters and outcome metadata of a `Match` run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Total number of initial candidates over all pattern nodes
    /// (`Σ_u |mat_0(u)|`).
    pub initial_candidates: usize,
    /// Number of `(u, x)` candidate pairs removed during refinement.
    pub removed_candidates: usize,
    /// Number of witness-counter decrements performed (a proxy for the work
    /// of the refinement loop).
    pub counter_decrements: usize,
    /// Whether the run ended early because some `mat(u)` became empty.
    pub failed_early: bool,
}

/// The result of running `Match`: the maximum match plus run statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// The maximum match `S` (all-empty when `P ⋬ G`).
    pub relation: MatchRelation,
    /// Statistics about the run.
    pub stats: MatchStats,
}

impl MatchOutcome {
    /// Whether the data graph matches the pattern (`P ⊴ G`).
    pub fn is_match(&self, pattern: &PatternGraph) -> bool {
        self.relation.is_match(pattern)
    }
}

/// Runs `Match` with a freshly built distance matrix.
///
/// This is the convenience entry point; use
/// [`bounded_simulation_with_oracle`] to reuse a prebuilt matrix (the paper
/// computes `M` once and shares it across patterns) or to select the BFS /
/// 2-hop variants.
pub fn bounded_simulation(pattern: &PatternGraph, graph: &DataGraph) -> MatchOutcome {
    let matrix = DistanceMatrix::build(graph);
    bounded_simulation_with_oracle(pattern, graph, &matrix)
}

/// Runs `Match` against an arbitrary [`DistanceOracle`].
pub fn bounded_simulation_with_oracle<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
) -> MatchOutcome {
    let np = pattern.node_count();
    let nv = graph.node_count();
    let mut stats = MatchStats::default();

    if np == 0 {
        // The empty pattern matches trivially with the empty relation.
        return MatchOutcome {
            relation: MatchRelation::empty(0),
            stats,
        };
    }

    // mat(u) as a membership bitmap per pattern node (lines 4-5 of Fig. 4).
    let mut member: Vec<Vec<bool>> = vec![vec![false; nv]; np];
    let mut live_count: Vec<usize> = vec![0; np];
    for u in pattern.node_ids() {
        let needs_out_edge = pattern.out_degree(u) > 0;
        for v in graph.nodes_satisfying(pattern.predicate(u)) {
            if needs_out_edge && graph.out_degree(v) == 0 {
                continue;
            }
            member[u.index()][v.index()] = true;
            live_count[u.index()] += 1;
        }
        stats.initial_candidates += live_count[u.index()];
        if live_count[u.index()] == 0 {
            stats.failed_early = true;
            return MatchOutcome {
                relation: MatchRelation::empty(np),
                stats,
            };
        }
    }

    // Witness counters per pattern edge: cnt[e][x] = |{y in mat(to(e)) :
    // within(x, y, bound(e))}| for x in mat(from(e)).
    //
    // All counters are computed against the *initial* candidate sets before
    // any removal takes place, so that every later removal of a witness `y`
    // corresponds to exactly one decrement.
    let edges: Vec<_> = pattern.edges().copied().collect();
    let mut counters: Vec<Vec<u32>> = vec![vec![0; nv]; edges.len()];
    // Worklist of removed (pattern node, data node) pairs to propagate.
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
    // Candidates found witness-less during counter initialisation; their
    // removal is deferred until all counters are in place.
    let mut pending: Vec<(PatternNodeId, NodeId)> = Vec::new();

    for (ei, e) in edges.iter().enumerate() {
        let from = e.from.index();
        let to = e.to.index();
        for x in 0..nv {
            if !member[from][x] {
                continue;
            }
            let xv = NodeId::new(x as u32);
            let mut count = 0u32;
            for (y, &is_member) in member[to].iter().enumerate() {
                if is_member && oracle.within(graph, xv, NodeId::new(y as u32), e.bound) {
                    count += 1;
                }
            }
            counters[ei][x] = count;
            if count == 0 {
                // x cannot witness edge e: schedule its removal from mat(from).
                pending.push((e.from, xv));
            }
        }
    }
    for (u, x) in pending {
        if member[u.index()][x.index()] {
            member[u.index()][x.index()] = false;
            live_count[u.index()] -= 1;
            stats.removed_candidates += 1;
            worklist.push((u, x));
            if live_count[u.index()] == 0 {
                stats.failed_early = true;
                return MatchOutcome {
                    relation: MatchRelation::empty(np),
                    stats,
                };
            }
        }
    }

    // Index of pattern in-edges per pattern node, to propagate removals to
    // candidate parents (lines 11-14 of Fig. 4).
    let mut in_edge_indices: Vec<Vec<usize>> = vec![Vec::new(); np];
    for (ei, e) in edges.iter().enumerate() {
        in_edge_indices[e.to.index()].push(ei);
    }

    while let Some((u, y)) = worklist.pop() {
        // y was removed from mat(u); decrement the counters of candidate
        // parents x (over every pattern edge ending in u) that reach y.
        for &ei in &in_edge_indices[u.index()] {
            let e = &edges[ei];
            let parent = e.from.index();
            for x in 0..nv {
                if !member[parent][x] {
                    continue;
                }
                let xv = NodeId::new(x as u32);
                if !oracle.within(graph, xv, y, e.bound) {
                    continue;
                }
                stats.counter_decrements += 1;
                debug_assert!(counters[ei][x] > 0, "witness counter underflow");
                counters[ei][x] -= 1;
                if counters[ei][x] == 0 {
                    member[parent][x] = false;
                    live_count[parent] -= 1;
                    stats.removed_candidates += 1;
                    worklist.push((e.from, xv));
                    if live_count[parent] == 0 {
                        stats.failed_early = true;
                        return MatchOutcome {
                            relation: MatchRelation::empty(np),
                            stats,
                        };
                    }
                }
            }
        }
    }

    // Collect the surviving candidates (lines 16-18).
    let sets: Vec<Vec<NodeId>> = member
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .filter(|&(_x, &alive)| alive)
                .map(|(x, &_alive)| NodeId::new(x as u32))
                .collect()
        })
        .collect();
    MatchOutcome {
        relation: MatchRelation::from_sets(sets),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_distance::{BfsOracle, TwoHopOracle};
    use gpm_graph::{
        Attributes, CmpOp, DataGraphBuilder, EdgeBound, PatternGraphBuilder, Predicate,
    };

    fn pn(i: u32) -> PatternNodeId {
        PatternNodeId::new(i)
    }

    fn dn(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// The drug-trafficking example of Fig. 1: pattern P0 and data graph G0.
    ///
    /// G0: boss B oversees AMs A1..Am; Am doubles as the secretary S; the
    /// AMs supervise a small hierarchy of field workers W, who report back.
    fn example_1_1(m: usize) -> (DataGraph, PatternGraph) {
        let mut g = DataGraph::new();
        let b = g.add_node(Attributes::labeled("B"));
        let mut ams = Vec::new();
        for i in 0..m {
            // The last AM is also the secretary: it carries both roles.
            let attrs = if i == m - 1 {
                Attributes::labeled("AM").with("secretary", true)
            } else {
                Attributes::labeled("AM")
            };
            let am = g.add_node(attrs);
            g.add_edge(b, am).unwrap();
            ams.push(am);
        }
        // Field-worker chains of depth 3 under the first AM, depth 1 under
        // the others; everyone reports back to an AM (so FW nodes have
        // outgoing edges, as P0 requires via the FW -> AM edge).
        let mut workers = Vec::new();
        for (i, &am) in ams.iter().enumerate() {
            let depth = if i == 0 { 3 } else { 1 };
            let mut prev = am;
            for _ in 0..depth {
                let w = g.add_node(Attributes::labeled("FW"));
                g.add_edge(prev, w).unwrap();
                workers.push(w);
                prev = w;
            }
            g.add_edge(prev, am).unwrap();
        }
        // The secretary reaches the top-level worker of the first AM in 1 hop.
        g.add_edge(*ams.last().unwrap(), workers[0]).unwrap();

        let mut p = PatternGraph::new();
        let pb = p.add_named_node("B", Predicate::label("B"));
        let pam = p.add_named_node("AM", Predicate::label("AM"));
        let ps = p.add_named_node(
            "S",
            Predicate::label("AM").and("secretary", CmpOp::Eq, true),
        );
        let pfw = p.add_named_node("FW", Predicate::label("FW"));
        p.add_edge(pb, pam, EdgeBound::ONE).unwrap();
        p.add_edge(pb, ps, EdgeBound::ONE).unwrap();
        p.add_edge(pam, pfw, EdgeBound::Hops(3)).unwrap();
        p.add_edge(ps, pfw, EdgeBound::ONE).unwrap();
        p.add_edge(pfw, pam, EdgeBound::Hops(3)).unwrap();
        (g, p)
    }

    #[test]
    fn empty_pattern_matches_trivially() {
        let g = DataGraph::new();
        let p = PatternGraph::new();
        let out = bounded_simulation(&p, &g);
        assert_eq!(out.relation.pattern_node_count(), 0);
        assert!(!out.stats.failed_early);
    }

    #[test]
    fn single_node_pattern() {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("A2")
            .node("A2", Attributes::labeled("A"))
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .build()
            .unwrap();
        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
        assert_eq!(out.relation.matches_of(pn(0)).len(), 2);

        let (p2, _) = PatternGraphBuilder::new()
            .labeled_node("Z")
            .build()
            .unwrap();
        let out2 = bounded_simulation(&p2, &g);
        assert!(!out2.is_match(&p2));
        assert!(out2.stats.failed_early);
    }

    #[test]
    fn simple_bounded_edge() {
        // a -> b -> c, pattern A -[2]-> C matches; with bound 1 it does not.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .path(&["A", "B", "C"])
            .build()
            .unwrap();
        let (p2, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .build()
            .unwrap();
        let out = bounded_simulation(&p2, &g);
        assert!(out.is_match(&p2));
        assert_eq!(out.relation.matches_of(pn(0)), &[dn(0)]);
        assert_eq!(out.relation.matches_of(pn(1)), &[dn(2)]);

        let (p1, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 1u32)
            .build()
            .unwrap();
        let out = bounded_simulation(&p1, &g);
        assert!(!out.is_match(&p1));
        assert!(out.relation.is_empty());
    }

    #[test]
    fn unbounded_edge_uses_reachability() {
        // a -> b -> c -> d; pattern A -*-> D.
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .labeled_node("D")
            .path(&["A", "B", "C", "D"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("D")
            .unbounded_edge("A", "D")
            .build()
            .unwrap();
        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
    }

    #[test]
    fn nonempty_path_requirement_on_cycles() {
        // Pattern A -[1]-> A requires a data node labelled A with an edge to
        // a node labelled A: a self-loop qualifies, an isolated node doesn't.
        let mut g = DataGraph::new();
        let a0 = g.add_node(Attributes::labeled("A"));
        let _a1 = g.add_node(Attributes::labeled("A"));
        g.add_edge(a0, a0).unwrap();

        let mut p = PatternGraph::new();
        let ua = p.add_node(Predicate::label("A"));
        let ub = p.add_node(Predicate::label("A"));
        p.add_edge(ua, ub, EdgeBound::ONE).unwrap();

        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
        // Only the self-loop node can match the source; both can match the sink.
        assert_eq!(out.relation.matches_of(ua), &[a0]);
        assert!(out.relation.contains(ub, a0));
    }

    #[test]
    fn example_1_1_matches_expected_nodes() {
        let (g, p) = example_1_1(4);
        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p), "P0 should match G0");
        // B matches only the boss.
        assert_eq!(out.relation.matches_of(pn(0)), &[dn(0)]);
        // AM matches all the A_i (the S pattern node maps to the AM that is
        // also the secretary).
        assert_eq!(out.relation.matches_of(pn(1)).len(), 4);
        assert_eq!(out.relation.matches_of(pn(2)).len(), 1);
        // Every FW node is matched to the FW pattern node.
        let fw_nodes = g
            .nodes()
            .filter(|&v| g.attributes(v).label() == Some("FW"))
            .count();
        assert_eq!(out.relation.matches_of(pn(3)).len(), fw_nodes);
        // The relation satisfies the definition.
        let m = DistanceMatrix::build(&g);
        assert!(out.relation.is_valid_match(&p, &g, &m));
    }

    #[test]
    fn oracles_agree_on_example() {
        let (g, p) = example_1_1(5);
        let matrix = DistanceMatrix::build(&g);
        let bfs = BfsOracle::new();
        let two_hop = TwoHopOracle::build(&g);
        let a = bounded_simulation_with_oracle(&p, &g, &matrix);
        let b = bounded_simulation_with_oracle(&p, &g, &bfs);
        let c = bounded_simulation_with_oracle(&p, &g, &two_hop);
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.relation, c.relation);
    }

    #[test]
    fn removing_critical_edge_breaks_match() {
        // Mirrors Example 2.2(3): dropping the only witness edge kills the match.
        let (mut g, names) = DataGraphBuilder::new()
            .labeled_node("CS")
            .labeled_node("Bio")
            .labeled_node("Soc")
            .path(&["CS", "Bio", "Soc"])
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("CS")
            .labeled_node("Soc")
            .edge("CS", "Soc", 3u32)
            .build()
            .unwrap();
        assert!(bounded_simulation(&p, &g).is_match(&p));
        g.remove_edge(names["CS"], names["Bio"]).unwrap();
        let out = bounded_simulation(&p, &g);
        assert!(!out.is_match(&p));
        assert!(out.relation.is_empty());
    }

    #[test]
    fn predicates_filter_candidates() {
        let mut g = DataGraph::new();
        let good = g.add_node(Attributes::labeled("Music").with("rate", 4.8));
        let bad = g.add_node(Attributes::labeled("Music").with("rate", 2.0));
        let target = g.add_node(Attributes::labeled("People"));
        g.add_edge(good, target).unwrap();
        g.add_edge(bad, target).unwrap();

        let mut p = PatternGraph::new();
        let u0 = p.add_node(Predicate::label("Music").and("rate", CmpOp::Gt, 4.5));
        let u1 = p.add_node(Predicate::label("People"));
        p.add_edge(u0, u1, EdgeBound::Hops(2)).unwrap();

        let out = bounded_simulation(&p, &g);
        assert!(out.is_match(&p));
        assert_eq!(out.relation.matches_of(u0), &[good]);
        assert_eq!(out.relation.matches_of(u1), &[target]);
    }

    #[test]
    fn stats_are_populated() {
        let (g, p) = example_1_1(3);
        let out = bounded_simulation(&p, &g);
        assert!(out.stats.initial_candidates > 0);
        assert!(!out.stats.failed_early);
        // The out-degree-zero pre-filter plus refinement removed nothing
        // essential, but some removals/decrements may have happened; just
        // check consistency.
        assert!(out.stats.removed_candidates <= out.stats.initial_candidates);
    }

    #[test]
    fn maximality_every_surviving_pair_is_necessary() {
        // For a small example, check that the computed relation is maximal:
        // adding any non-member candidate pair that satisfies the predicate
        // creates an invalid relation.
        let (g, p) = example_1_1(3);
        let out = bounded_simulation(&p, &g);
        let m = DistanceMatrix::build(&g);
        assert!(out.relation.is_valid_match(&p, &g, &m));
        for u in p.node_ids() {
            for v in g.nodes() {
                if out.relation.contains(u, v) || !g.satisfies(v, p.predicate(u)) {
                    continue;
                }
                let mut bigger = out.relation.clone();
                bigger.insert(u, v);
                assert!(
                    !bigger.is_valid_match(&p, &g, &m),
                    "adding ({u}, {v}) should violate the match conditions"
                );
            }
        }
    }
}
