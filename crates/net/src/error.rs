//! Error type shared by the codec, server and client.

use crate::proto::ErrorCode;
use gpm_service::DurabilityError;
use std::fmt;
use std::io;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket operation failed (includes the peer hanging up
    /// mid-frame: an unexpected EOF surfaces as [`io::ErrorKind::UnexpectedEof`]).
    Io(io::Error),
    /// A frame failed its integrity envelope: bad CRC, a length field
    /// exceeding [`crate::codec::MAX_FRAME_LEN`], or a payload that is not
    /// the message the state machine expects. The connection is unusable
    /// but the service behind it is untouched.
    Frame(String),
    /// A CRC-valid payload could not be encoded or decoded — a protocol
    /// version mismatch or a bug, never line noise.
    Codec(String),
    /// The peer violated the protocol state machine (e.g. a request before
    /// the handshake, or a response of the wrong kind).
    Protocol(String),
    /// The server answered with an explicit error response.
    Remote {
        /// The machine-readable class of the failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "network I/O error: {e}"),
            NetError::Frame(m) => write!(f, "bad frame: {m}"),
            NetError::Codec(m) => write!(f, "wire codec error: {m}"),
            NetError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NetError::Remote { code, message } => {
                write!(f, "server error [{code:?}]: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<serde_json::Error> for NetError {
    fn from(e: serde_json::Error) -> Self {
        NetError::Codec(e.to_string())
    }
}

impl From<DurabilityError> for NetError {
    fn from(e: DurabilityError) -> Self {
        match e {
            DurabilityError::Io(io) => NetError::Io(io),
            DurabilityError::Corrupt(m) => NetError::Frame(m),
            DurabilityError::Codec(m) => NetError::Codec(m),
            DurabilityError::State(m) => NetError::Protocol(m),
        }
    }
}
