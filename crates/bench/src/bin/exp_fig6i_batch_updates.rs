//! Fig. 6(i) — IncMatch vs Match under mixed batches of edge insertions and
//! deletions on the (simulated) YouTube graph, |δ| from 400 to 3200 (scaled
//! by `--scale`). The Match baseline recomputes the distance matrix, as in
//! the paper. `--dataset-dir <path>` runs it on a real on-disk dataset
//! instead of the stand-in.

use gpm_bench::{run_update_experiment, HarnessArgs, UpdateMix};

fn main() {
    let args = HarnessArgs::from_env();
    run_update_experiment(
        "Fig. 6(i): IncMatch vs Match, mixed updates",
        UpdateMix::Mixed,
        &[400, 800, 1200, 1600, 2000, 2400, 2800, 3200],
        &args,
    );
    println!(
        "paper reference: IncMatch outperforms Match for |δ| <= 2800 and loses for larger\n\
         batches; the affected area grows with |δ|."
    );
}
