//! Ablation benches for the implementation's design choices:
//!
//! * optimized `Match` (witness counters / premv-style propagation) vs the
//!   naive fixpoint;
//! * distance-oracle choice: matrix vs BFS vs 2-hop for the same pattern;
//! * graph simulation (unit bounds) vs bounded simulation on the same
//!   pattern, quantifying the cost of bounded connectivity.

use criterion::{criterion_group, criterion_main, Criterion};
use gpm::matching::naive::bounded_simulation_naive_with_oracle;
use gpm::{
    bounded_simulation_with_oracle, generate_pattern, graph_simulation, BfsOracle, DistanceMatrix,
    PatternGenConfig, RandomGraphConfig, TwoHopOracle,
};

fn bench_optimized_vs_naive(c: &mut Criterion) {
    let graph = gpm::random_graph(&RandomGraphConfig::new(1_500, 4_500, 20).with_seed(21));
    let matrix = DistanceMatrix::build(&graph);
    let (pattern, _) = generate_pattern(&graph, &PatternGenConfig::new(6, 7, 3).with_seed(22));

    let mut group = c.benchmark_group("ablation/match-vs-naive");
    group.sample_size(15);
    group.bench_function("Match (counter propagation)", |b| {
        b.iter(|| bounded_simulation_with_oracle(&pattern, &graph, &matrix));
    });
    group.bench_function("naive fixpoint", |b| {
        b.iter(|| bounded_simulation_naive_with_oracle(&pattern, &graph, &matrix));
    });
    group.finish();
}

fn bench_oracle_choice(c: &mut Criterion) {
    let graph = gpm::random_graph(&RandomGraphConfig::new(1_500, 4_500, 20).with_seed(23));
    let matrix = DistanceMatrix::build(&graph);
    let two_hop = TwoHopOracle::build(&graph);
    let (pattern, _) = generate_pattern(&graph, &PatternGenConfig::new(5, 5, 3).with_seed(24));

    let mut group = c.benchmark_group("ablation/oracle");
    group.sample_size(15);
    group.bench_function("matrix", |b| {
        b.iter(|| bounded_simulation_with_oracle(&pattern, &graph, &matrix));
    });
    group.bench_function("2-hop", |b| {
        b.iter(|| bounded_simulation_with_oracle(&pattern, &graph, &two_hop));
    });
    group.bench_function("bfs", |b| {
        b.iter(|| {
            let bfs = BfsOracle::new();
            bounded_simulation_with_oracle(&pattern, &graph, &bfs)
        });
    });
    group.finish();
}

fn bench_bounded_vs_plain_simulation(c: &mut Criterion) {
    let graph = gpm::random_graph(&RandomGraphConfig::new(1_500, 4_500, 20).with_seed(25));
    let matrix = DistanceMatrix::build(&graph);
    let (pattern, _) = generate_pattern(
        &graph,
        &PatternGenConfig {
            max_bound: 1,
            bound_variation: 0,
            unbounded_probability: 0.0,
            ..PatternGenConfig::new(5, 5, 1).with_seed(26)
        },
    );

    let mut group = c.benchmark_group("ablation/simulation");
    group.sample_size(15);
    group.bench_function("graph simulation (HHK)", |b| {
        b.iter(|| graph_simulation(&pattern, &graph));
    });
    group.bench_function("bounded simulation (unit bounds)", |b| {
        b.iter(|| bounded_simulation_with_oracle(&pattern, &graph, &matrix));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_optimized_vs_naive,
    bench_oracle_choice,
    bench_bounded_vs_plain_simulation
);
criterion_main!(benches);
