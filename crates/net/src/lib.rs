//! Network front-end for the continuous matching service.
//!
//! `gpm-net` puts a socket in front of [`gpm_service::MatchService`]:
//! register, deregister, suspend, resume, apply-batch, result and
//! subscribe all work over a TCP connection with exactly the in-process
//! semantics — the server serialises every mutation through one service
//! lock and forwards each wire subscriber a real in-process subscription,
//! so a delta stream observed over the wire is **bit-identical** to the
//! stream an embedded [`gpm_service::Subscription`] yields (the
//! `net_differential` suite pins this at several thread counts and on both
//! oracle backends).
//!
//! The wire format reuses the WAL's integrity envelope: every message is
//! one `len ++ crc ++ json` frame ([`gpm_service::wal`]), so corruption
//! detection on the socket and on disk is literally the same code.
//! `PROTOCOL.md` in the repository root is the normative wire spec;
//! `ARCHITECTURE.md` places this crate in the workspace.
//!
//! # Example: serve, connect, subscribe — all on loopback
//!
//! ```
//! use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};
//! use gpm_distance::EdgeUpdate;
//! use gpm_net::{NetClient, NetServer, ServerOptions};
//! use gpm_service::{fold_deltas, MatchService};
//!
//! let (g, ids) = DataGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("mid")
//!     .labeled_node("worker")
//!     .edge("boss", "mid")
//!     .build()
//!     .unwrap();
//! let (p, _) = PatternGraphBuilder::new()
//!     .labeled_node("boss")
//!     .labeled_node("worker")
//!     .edge("boss", "worker", 2u32)
//!     .build()
//!     .unwrap();
//!
//! // Serve the service on an OS-assigned loopback port.
//! let server = NetServer::bind("127.0.0.1:0", MatchService::new(g), ServerOptions::default())
//!     .unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = server.spawn().unwrap();
//!
//! // One connection registers and applies updates...
//! let mut admin = NetClient::connect(addr).unwrap();
//! let q = admin.register(&p).unwrap();
//!
//! // ...another becomes a delta stream for the query.
//! let mut sub = NetClient::connect(addr).unwrap().subscribe(q).unwrap();
//! let snapshot = sub.next().unwrap().unwrap(); // first delta = snapshot
//! assert!(snapshot.added.is_empty()); // no boss→worker path yet
//!
//! let out = admin.apply(&[EdgeUpdate::Insert(ids["mid"], ids["worker"])]).unwrap();
//! assert_eq!(out.deltas.len(), 1); // the match appeared
//! let delta = sub.next().unwrap().unwrap();
//! assert_eq!(delta, out.deltas[0]); // wire stream == batch outcome
//!
//! // Folding the stream reproduces the live result.
//! let folded = fold_deltas(2, [&snapshot, &delta]);
//! assert_eq!(Some(folded), admin.result(q).unwrap());
//!
//! // Deregistering ends the stream explicitly, never silently.
//! admin.deregister(q).unwrap();
//! assert!(sub.next().unwrap().is_none());
//! assert_eq!(sub.end_reason(), Some(gpm_net::EndReason::QueryClosed));
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
mod metrics;
pub mod proto;

mod client;
mod server;

pub use client::{AppliedBatch, NetClient, NetSubscription};
pub use error::NetError;
pub use proto::{EndReason, ErrorCode, Request, Response, StreamMsg, PROTOCOL_VERSION};
pub use server::{BackpressurePolicy, NetServer, ServerHandle, ServerOptions};
