//! Vendored, dependency-free re-implementation of the `rustc-hash` crate.
//!
//! Provides the classic "FxHash" function (a fast, non-cryptographic hash
//! used by rustc) together with the `FxHashMap`/`FxHashSet` aliases. The
//! build environment has no network access to crates.io, so the workspace
//! ships this minimal stand-in with an API-compatible surface.

#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`] to hash keys.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`] to hash values.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// A `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash hasher: multiply-and-rotate over machine words.
///
/// Not cryptographically secure and not DoS-resistant — exactly like the
/// upstream crate, it trades robustness for speed on short keys such as the
/// `(u32, u32)` edge tuples and `u32` node ids used throughout this
/// workspace.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn hashing_is_deterministic() {
        let hash = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }
}
