//! Multi-query interleaving fuzz: randomized register / deregister /
//! suspend / resume / update schedules against K concurrent queries.
//!
//! Invariant (the service's correctness gate, extending the
//! `incremental_consistency` suite to the multi-query engine): after every
//! operation, each live query's result equals a from-scratch `Match` on the
//! service's current graph, and every subscription's folded delta stream
//! equals the live result it follows.

use gpm::{
    bounded_simulation_with_oracle, fold_deltas, generate_pattern, random_updates, DataGraph,
    DistanceMatrix, EdgeUpdate, MatchService, PatternGenConfig, PatternGraph, QueryId,
    Subscription, UpdateStreamConfig,
};
use gpm::{datagen::powerlaw_graph, datagen::PowerLawConfig};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

fn labelled_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    g
}

/// One tracked query: the registered pattern, a subscription following it,
/// and whether the schedule currently has it suspended.
struct Tracked {
    id: QueryId,
    pattern: PatternGraph,
    sub: Subscription,
    suspended: bool,
}

/// The service's maintained oracle answers every pair like a matrix rebuilt
/// from scratch on its current graph.
fn assert_service_oracle_fresh(svc: &MatchService, context: &str) {
    let rebuilt = DistanceMatrix::build(svc.graph());
    let n = svc.graph().node_count() as u32;
    for x in (0..n).map(gpm::NodeId::new) {
        for y in (0..n).map(gpm::NodeId::new) {
            assert_eq!(
                svc.oracle().nonempty_distance(svc.graph(), x, y),
                rebuilt.nonempty_distance(x, y),
                "oracle diverged at ({x:?}, {y:?}) {context}"
            );
        }
    }
}

fn check_live_queries(svc: &mut MatchService, tracked: &[Tracked], context: &str) {
    let rebuilt = DistanceMatrix::build(svc.graph());
    assert_service_oracle_fresh(svc, context);
    for t in tracked {
        if t.suspended {
            assert!(
                svc.result(t.id).is_none(),
                "suspended query {} answered {context}",
                t.id
            );
            continue;
        }
        let live = svc.result(t.id).unwrap();
        let recomputed = bounded_simulation_with_oracle(&t.pattern, svc.graph(), &rebuilt);
        assert_eq!(
            live, recomputed.relation,
            "query {} diverged {context}",
            t.id
        );
    }
}

/// Runs one random schedule; `seed` drives everything.
fn run_schedule(seed: u64, ops: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = labelled_graph(40, 110, 4, seed);
    let mut svc = MatchService::new(g.clone());
    let mut tracked: Vec<Tracked> = Vec::new();
    let mut round = 0u64;

    // Seed the catalog with K = 4 queries so batches always fan out.
    for i in 0..4u64 {
        let (p, _) = generate_pattern(
            svc.graph(),
            &PatternGenConfig::new(3, 3, 3).with_seed(seed * 7 + i),
        );
        let id = svc.register(p.clone());
        let sub = svc.subscribe(id).unwrap();
        tracked.push(Tracked {
            id,
            pattern: p,
            sub,
            suspended: false,
        });
    }

    for op in 0..ops {
        round += 1;
        match rng.gen_range(0..10u32) {
            // Register a fresh query (keep the catalog bounded).
            0 if tracked.len() < 8 => {
                let (p, _) = generate_pattern(
                    svc.graph(),
                    &PatternGenConfig::new(3, 3, 3).with_seed(seed * 31 + round),
                );
                let id = svc.register(p.clone());
                let sub = svc.subscribe(id).unwrap();
                tracked.push(Tracked {
                    id,
                    pattern: p,
                    sub,
                    suspended: false,
                });
            }
            // Deregister a random query (keep at least two).
            1 if tracked.len() > 2 => {
                let victim = tracked.swap_remove(rng.gen_range(0..tracked.len()));
                assert!(svc.deregister(victim.id));
                assert!(svc.result(victim.id).is_none());
            }
            // Suspend / resume.
            2 => {
                let pick = rng.gen_range(0..tracked.len());
                let t = &mut tracked[pick];
                if t.suspended {
                    assert!(svc.resume(t.id));
                    t.suspended = false;
                } else {
                    assert!(svc.suspend(t.id));
                    t.suspended = true;
                }
            }
            // Unit insert/delete.
            3 | 4 => {
                let updates = random_updates(
                    svc.graph(),
                    &UpdateStreamConfig::mixed(1).with_seed(seed * 101 + round),
                );
                if let Some(u) = updates.first() {
                    svc.apply_one(*u);
                }
            }
            // Mixed batch.
            _ => {
                let n = rng.gen_range(3..15usize);
                let updates = random_updates(
                    svc.graph(),
                    &UpdateStreamConfig::mixed(n).with_seed(seed * 131 + round),
                );
                svc.apply(&updates);
            }
        }
        check_live_queries(&mut svc, &tracked, &format!("after op {op} (seed {seed})"));
    }

    // Wake every suspended query and reconcile: after one (even empty)
    // batch, every subscription's folded stream equals the live result.
    for t in &mut tracked {
        if t.suspended {
            svc.resume(t.id);
            t.suspended = false;
        }
    }
    svc.apply(&[]);
    check_live_queries(
        &mut svc,
        &tracked,
        &format!("after final wake (seed {seed})"),
    );
    for t in &tracked {
        let folded = fold_deltas(t.pattern.node_count(), t.sub.drain().iter());
        assert_eq!(
            folded,
            svc.result(t.id).unwrap(),
            "subscription fold diverged for {} (seed {seed})",
            t.id
        );
    }
}

#[test]
fn random_schedules_keep_every_query_consistent() {
    for seed in 0..8u64 {
        run_schedule(seed, 18);
    }
}

#[test]
fn long_schedule_with_churn() {
    run_schedule(0xC0FFEE, 40);
}

/// Deletion of a query mid-stream must not disturb the survivors, and
/// re-registering the same pattern starts a fresh, consistent query.
#[test]
fn deregister_and_reregister_same_pattern() {
    let g = labelled_graph(35, 90, 4, 77);
    let mut svc = MatchService::new(g.clone());
    let (p, _) = generate_pattern(&g, &PatternGenConfig::new(3, 3, 3).with_seed(5));
    let first = svc.register(p.clone());
    let keeper = {
        let (p2, _) = generate_pattern(&g, &PatternGenConfig::new(3, 3, 3).with_seed(6));
        svc.register(p2)
    };

    let updates = random_updates(&g, &UpdateStreamConfig::mixed(10).with_seed(7));
    svc.apply(&updates);
    svc.deregister(first);

    let more = random_updates(svc.graph(), &UpdateStreamConfig::mixed(10).with_seed(8));
    svc.apply(&more);

    let second = svc.register(p.clone());
    assert!(second > first, "ids are never reused");
    let rebuilt = DistanceMatrix::build(svc.graph());
    for id in [keeper, second] {
        let live = svc.result(id).unwrap();
        let pattern = svc.catalog().get(id).unwrap().pattern().clone();
        let recomputed = bounded_simulation_with_oracle(&pattern, svc.graph(), &rebuilt);
        assert_eq!(live, recomputed.relation);
    }
}

/// Suspension survives a crash: killing a durable service with a query
/// suspended and reopening leaves it suspended (no answers, no per-batch
/// cost), and resuming then emits **exactly one** catch-up delta covering
/// everything missed — before and after the crash alike.
#[test]
fn suspended_query_stays_suspended_across_kill_and_reopen() {
    let dir = std::env::temp_dir().join(format!("gpm-interleave-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let g = labelled_graph(30, 75, 3, 21);
    let mut svc =
        gpm::MatchService::create_durable(&dir, g, gpm::DurableOptions::default()).unwrap();

    let (p, _) = generate_pattern(svc.graph(), &PatternGenConfig::new(3, 3, 3).with_seed(22));
    let suspended = svc.register(p.clone());
    let (p2, _) = generate_pattern(svc.graph(), &PatternGenConfig::new(3, 3, 3).with_seed(23));
    let live = svc.register(p2.clone());

    assert!(svc.suspend(suspended));
    // Updates land while the query sleeps — some before the crash...
    let updates = random_updates(svc.graph(), &UpdateStreamConfig::mixed(8).with_seed(24));
    svc.apply(&updates);
    drop(svc); // kill

    let mut svc = gpm::MatchService::open_durable(&dir, gpm::DurableOptions::default()).unwrap();
    assert!(
        svc.result(suspended).is_none(),
        "a suspended query must stay suspended across recovery"
    );
    assert!(
        svc.result(live).is_some(),
        "the active query answers right after recovery"
    );

    // ... and some after it, still unseen by the sleeper.
    let sub = svc.subscribe(suspended).unwrap();
    assert_eq!(sub.drain().len(), 1, "subscription snapshot only");
    let more = random_updates(svc.graph(), &UpdateStreamConfig::mixed(8).with_seed(25));
    svc.apply(&more);
    assert_eq!(
        sub.drain().len(),
        0,
        "no deltas reach a suspended query's subscribers"
    );

    // Resume: one catch-up delta reconciles the entire sleep, crash included.
    assert!(svc.resume(suspended));
    let woken = svc.result(suspended).unwrap();
    let stream = sub.drain();
    assert!(
        stream.len() <= 1,
        "resume emits at most one catch-up delta, got {}",
        stream.len()
    );
    let rebuilt = DistanceMatrix::build(svc.graph());
    let recomputed = bounded_simulation_with_oracle(&p, svc.graph(), &rebuilt);
    assert_eq!(woken, recomputed.relation, "woken query is consistent");
    // The subscription's full history (snapshot at subscribe time + the
    // catch-up) folds to the live result.
    let snapshot_then_catchup: Vec<_> = svc
        .subscribe(suspended)
        .unwrap()
        .drain()
        .into_iter()
        .collect();
    assert_eq!(
        fold_deltas(p.node_count(), snapshot_then_catchup.iter()),
        woken
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Edge-case schedules: updates on an empty catalog, duplicate inserts,
/// deletes of missing edges, and unknown-node updates are all absorbed.
#[test]
fn degenerate_schedules_are_absorbed() {
    let g = labelled_graph(20, 50, 3, 9);
    let mut svc = MatchService::new(g.clone());

    // No queries registered: updates still maintain graph + oracle.
    let updates = random_updates(&g, &UpdateStreamConfig::mixed(8).with_seed(10));
    let out = svc.apply(&updates);
    assert!(out.deltas.is_empty());
    assert_service_oracle_fresh(&svc, "with an empty catalog");

    // A batch of pure no-ops: duplicate insert, missing delete, unknown node.
    let (a, b) = svc.graph().edges().next().unwrap();
    let missing = gpm::NodeId::new(svc.graph().node_count() as u32 + 5);
    let (p, _) = generate_pattern(svc.graph(), &PatternGenConfig::new(3, 3, 3).with_seed(11));
    let q = svc.register(p);
    let before = svc.result(q).unwrap();
    let out = svc.apply(&[
        EdgeUpdate::Insert(a, b),
        EdgeUpdate::Delete(missing, a),
        EdgeUpdate::Insert(missing, missing),
    ]);
    assert_eq!(out.applied, 0);
    assert!(out.deltas.is_empty());
    assert_eq!(svc.result(q).unwrap(), before);
}
