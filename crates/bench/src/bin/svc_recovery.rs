//! `svc_recovery` — what durability costs, and what recovery buys.
//!
//! Three questions, one table each:
//!
//! 1. **Logging overhead**: the same K-query × U-batch schedule on an
//!    ephemeral service versus a durable one (every batch appended to the
//!    fsynced write-ahead log before it applies), and versus a durable one
//!    with automatic snapshot folding. The overhead column is the price of
//!    the crash guarantee per batch.
//! 2. **Recovery latency**: reopening each durable directory — pure log
//!    replay (the snapshot holds only the initial graph) versus
//!    snapshot-then-short-tail — timed, with the recovered results
//!    cross-checked bit-for-bit against the uninterrupted service.
//! 3. **Footprint**: bytes on disk per mode (WAL + snapshot segments).
//!
//! A per-batch latency table (exact nearest-rank p50/p99/p999 plus the
//! oracle's rebuild count and resident size) shows where the fsync cost
//! lands; `--obs` appends the `gpm-obs` registry report (the `wal` scope
//! breaks appends into encode and fsync time) and `--obs-out` streams JSONL.
//!
//! Durable runs force `--threads`-independent results by construction, so
//! the cross-check is exact equality, not approximation.

use gpm::{random_updates, service::wal::WAL_FILE};
use gpm::{DurableOptions, EdgeUpdate, MatchService, PatternGraph, UpdateStreamConfig};
use gpm_bench::{
    dag_pattern, fmt_ms, load_source_or_exit, percentile_exact, time, HarnessArgs, Table,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Pre-generates `batches` update batches against an evolving copy of the
/// graph, so every mode replays the exact same stream.
fn scripted_batches(
    graph: &gpm::DataGraph,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<EdgeUpdate>> {
    let mut scratch = graph.clone();
    let mut script = Vec::with_capacity(batches);
    for round in 0..batches {
        let updates = random_updates(
            &scratch,
            &UpdateStreamConfig::mixed(batch_size).with_seed(seed + round as u64),
        );
        for u in &updates {
            u.apply(&mut scratch);
        }
        script.push(updates);
    }
    script
}

fn dir_bytes(path: &Path) -> u64 {
    let Ok(entries) = fs::read_dir(path) else {
        return 0;
    };
    entries
        .flatten()
        .map(|e| {
            let meta = e.metadata().expect("stat");
            if meta.is_dir() {
                dir_bytes(&e.path())
            } else {
                meta.len()
            }
        })
        .sum()
}

fn fmt_kib(b: u64) -> String {
    format!("{:.1} KiB", b as f64 / 1024.0)
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpm-svc-recovery-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let args = HarnessArgs::from_env();
    let source = args.update_source_or_exit();
    let graph = load_source_or_exit(&source, &args);
    let parallelism = args.parallelism();

    let queries = 8usize;
    let batches = 16usize;
    let batch_size = args.scaled(50).min(50);
    let cadence = 4u64; // records between automatic snapshots (durable+snap)
    println!(
        "{}: |V| = {}, |E| = {}, {} queries, {} batches x {} updates, {} threads [{}]\n",
        source.name(),
        graph.node_count(),
        graph.edge_count(),
        queries,
        batches,
        batch_size,
        parallelism.threads(),
        source.describe(args.scale)
    );

    let script = scripted_batches(&graph, batches, batch_size, args.seed + 77);
    let patterns: Vec<PatternGraph> = (0..queries)
        .map(|i| dag_pattern(&graph, 4, 4, 3, args.seed + i as u64 * 131))
        .collect();

    // Uninterrupted reference: plain in-memory service.
    let mut reference = MatchService::with_backend(graph.clone(), args.oracle, parallelism.clone());
    let ref_ids: Vec<_> = patterns
        .iter()
        .map(|p| reference.register(p.clone()))
        .collect();
    let mut ref_samples: Vec<Duration> = Vec::with_capacity(script.len());
    for batch in &script {
        let (_, d) = time(|| reference.apply(batch));
        ref_samples.push(d);
    }
    let ref_apply: Duration = ref_samples.iter().sum();
    let ref_results: Vec<_> = ref_ids
        .iter()
        .map(|&id| reference.result(id).expect("active query"))
        .collect();

    let mut overhead = Table::new(
        "svc_recovery: logging overhead per mode (same schedule, same results)",
        &[
            "mode",
            "register+apply (ms)",
            "vs ephemeral",
            "on disk",
            "WAL",
            "snapshot",
        ],
    );
    overhead.row(vec![
        "ephemeral".into(),
        fmt_ms(ref_apply),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    let modes: [(&str, Option<u64>); 2] =
        [("durable wal-only", None), ("durable snap", Some(cadence))];
    let mut recovery = Table::new(
        "svc_recovery: reopen latency (snapshot load + log replay)",
        &["mode", "recover (ms)", "replayed records", "results agree"],
    );

    // Per-batch apply latency per mode: the WAL's fsync cost lands in the
    // tail, and the oracle columns (`DistanceOracle::rebuilds`/
    // `memory_bytes`) tie backend degradation to the mode that caused it.
    let mut latency = Table::new(
        "svc_recovery: per-batch apply latency",
        &[
            "mode",
            "p50 (ms)",
            "p99 (ms)",
            "p999 (ms)",
            "max (ms)",
            "oracle rebuilds",
            "oracle mem (MiB)",
        ],
    );
    let latency_row = |latency: &mut Table,
                       mode: &str,
                       samples: &[Duration],
                       rebuilds: usize,
                       mem_bytes: usize| {
        latency.row(vec![
            mode.into(),
            fmt_ms(percentile_exact(samples, 0.50)),
            fmt_ms(percentile_exact(samples, 0.99)),
            fmt_ms(percentile_exact(samples, 0.999)),
            fmt_ms(samples.iter().max().copied().unwrap_or_default()),
            rebuilds.to_string(),
            format!("{:.1}", mem_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    };
    latency_row(
        &mut latency,
        "ephemeral",
        &ref_samples,
        reference.oracle().rebuilds(),
        reference.oracle().memory_bytes(),
    );

    let mut roots = Vec::new();
    for (mode, snapshot_every) in modes {
        let root = temp_root(&mode.replace(' ', "-"));
        let opts = DurableOptions { snapshot_every };
        let mut svc = MatchService::create_durable_with(
            &root,
            graph.clone(),
            args.oracle,
            parallelism.clone(),
            opts,
        )
        .expect("fresh durable root");
        let ids: Vec<_> = patterns.iter().map(|p| svc.register(p.clone())).collect();
        let mut samples: Vec<Duration> = Vec::with_capacity(script.len());
        for batch in &script {
            let (_, d) = time(|| svc.apply(batch));
            samples.push(d);
        }
        let apply: Duration = samples.iter().sum();
        latency_row(
            &mut latency,
            mode,
            &samples,
            svc.oracle().rebuilds(),
            svc.oracle().memory_bytes(),
        );
        drop(svc); // crash

        let wal_bytes = fs::metadata(root.join(WAL_FILE)).map_or(0, |m| m.len());
        let snap_bytes = dir_bytes(&root.join("snapshot"));
        overhead.row(vec![
            mode.into(),
            fmt_ms(apply),
            format!("{:.2}x", apply.as_secs_f64() / ref_apply.as_secs_f64()),
            fmt_kib(wal_bytes + snap_bytes),
            fmt_kib(wal_bytes),
            fmt_kib(snap_bytes),
        ]);

        let replayed = gpm::service::wal::read_wal(&root.join(WAL_FILE))
            .expect("clean log")
            .records
            .len();
        let (mut recovered, reopen) = time(|| {
            MatchService::open_durable_with(&root, parallelism.clone(), opts)
                .expect("recoverable root")
        });
        let agree = ids
            .iter()
            .zip(&ref_results)
            .all(|(&id, expected)| recovered.result(id).as_ref() == Some(expected));
        recovery.row(vec![
            mode.into(),
            fmt_ms(reopen),
            replayed.to_string(),
            agree.to_string(),
        ]);
        roots.push(root);
    }

    overhead.print();
    println!();
    latency.print();
    println!();
    recovery.print();
    println!(
        "\nEvery durable batch is one fsynced WAL append before it applies; the snap mode\n\
         additionally folds the service into an atomic snapshot every {cadence} records,\n\
         which bounds both the log and the replay at the price of periodic snapshot\n\
         writes. Recovery = load snapshot + replay surviving records; `results agree`\n\
         is exact equality with the uninterrupted run (the crash-point fuzz suite in\n\
         tests/service_recovery.rs proves the same for every torn prefix)."
    );
    for root in roots {
        let _ = fs::remove_dir_all(&root);
    }

    if args.obs {
        // The `wal` scope (append/fsync timing, bytes) only populates in
        // the durable modes; `service.batch_ns` spans all three.
        println!("\n{}", gpm::obs::registry().report());
        if let Some(path) = &args.obs_out {
            gpm::obs::registry().export_snapshot();
            let lines = gpm_bench::obs_jsonl_check_or_exit(path);
            println!("obs JSONL OK ({lines} lines, {})", path.display());
        }
    }
}
