//! Fig. 6(k) — IncMatch vs Match under insertion-only batches on the
//! (simulated) YouTube graph, |δ| from 200 to 1600 (scaled by `--scale`).
//! `--dataset-dir <path>` runs it on a real on-disk dataset instead.

use gpm_bench::{run_update_experiment, HarnessArgs, UpdateMix};

fn main() {
    let args = HarnessArgs::from_env();
    run_update_experiment(
        "Fig. 6(k): IncMatch vs Match, insertions only",
        UpdateMix::Insertions,
        &[200, 400, 600, 800, 1000, 1200, 1400, 1600],
        &args,
    );
    println!(
        "paper reference: insertions have a stronger impact than deletions — the affected area\n\
         per insertion grows quickly (|AFF| up to thousands), so the advantage of IncMatch\n\
         narrows as |δ| grows."
    );
}
