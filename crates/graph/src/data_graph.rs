//! The attributed data graph `G = (V, E, f_A)`.
//!
//! A finite directed graph whose nodes carry attribute tuples. Parallel edges
//! are not part of the model (`E ⊆ V × V`); self-loops are allowed in data
//! graphs (a node may recommend itself, cite itself, etc. — and they matter
//! for the "non-empty path" semantics of bounded simulation).
//!
//! The structure is optimised for the access patterns of the matching
//! algorithms:
//!
//! * forward and reverse adjacency in **compressed-sparse-row** form
//!   (offsets + one flat neighbour array per direction),
//!   so the BFS-heavy distance oracles and the matcher's candidate
//!   refinement scan contiguous memory; `Match` walks edges both ways when
//!   propagating removals to ancestors;
//! * a **delta overlay** on top of each CSR base so the incremental
//!   algorithms can insert/delete edges in `O(deg)` per update (never a full
//!   `O(|E|)` rebuild); [`DataGraph::compact`] folds the overlay back;
//! * `O(1)` expected edge-membership tests (incremental updates check for
//!   duplicates);
//! * dense `u32` node ids so per-node state can live in flat vectors.

use crate::attributes::Attributes;
use crate::csr::CsrAdjacency;
use crate::error::GraphError;
use crate::node_id::NodeId;
use crate::predicate::Predicate;
use crate::Result;
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

/// An attributed directed data graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DataGraph {
    attrs: Vec<Attributes>,
    out_adj: CsrAdjacency,
    in_adj: CsrAdjacency,
    edge_set: FxHashSet<(u32, u32)>,
    edge_count: usize,
}

impl DataGraph {
    /// Creates an empty data graph.
    pub fn new() -> Self {
        DataGraph::default()
    }

    /// Creates an empty data graph with capacity reserved for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DataGraph {
            attrs: Vec::with_capacity(nodes),
            out_adj: CsrAdjacency::with_capacity(nodes),
            in_adj: CsrAdjacency::with_capacity(nodes),
            edge_set: FxHashSet::default(),
            edge_count: 0,
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Whether `v` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.attrs.len()
    }

    /// Adds a node carrying the given attributes and returns its id.
    pub fn add_node(&mut self, attrs: impl Into<Attributes>) -> NodeId {
        let id = NodeId::new(self.attrs.len() as u32);
        self.attrs.push(attrs.into());
        self.out_adj.push_node();
        self.in_adj.push_node();
        id
    }

    /// Adds `n` nodes with empty attribute tuples, returning the id of the
    /// first one. Ids are contiguous.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = NodeId::new(self.attrs.len() as u32);
        for _ in 0..n {
            self.add_node(Attributes::new());
        }
        first
    }

    /// Adds the directed edge `(from, to)`.
    ///
    /// Errors if either endpoint is unknown or the edge already exists.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if !self.edge_set.insert((from.0, to.0)) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        self.out_adj.insert(from, to);
        self.in_adj.insert(to, from);
        self.edge_count += 1;
        Ok(())
    }

    /// Adds the edge if it is not already present; returns `true` if it was
    /// inserted. Errors only on unknown endpoints.
    pub fn try_add_edge(&mut self, from: NodeId, to: NodeId) -> Result<bool> {
        match self.add_edge(from, to) {
            Ok(()) => Ok(true),
            Err(GraphError::DuplicateEdge(..)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Removes the directed edge `(from, to)`.
    ///
    /// Errors if either endpoint is unknown or the edge does not exist.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if !self.edge_set.remove(&(from.0, to.0)) {
            return Err(GraphError::MissingEdge(from, to));
        }
        self.out_adj.remove(from, to);
        self.in_adj.remove(to, from);
        self.edge_count -= 1;
        Ok(())
    }

    /// Whether the edge `(from, to)` exists.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_set.contains(&(from.0, to.0))
    }

    /// The out-neighbours ("children") of `v`, in insertion order, as one
    /// contiguous slice (the CSR base, or the node's overlay list if `v` was
    /// mutated since the last [`compact`](DataGraph::compact)).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.out_adj.neighbors(v)
    }

    /// The in-neighbours ("parents") of `v`, in insertion order, as one
    /// contiguous slice.
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.in_adj.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj.degree(v)
    }

    /// Whether both adjacency directions are fully packed in their CSR base
    /// (no node's neighbour list lives in the delta overlay).
    #[inline]
    pub fn is_compact(&self) -> bool {
        self.out_adj.is_compact() && self.in_adj.is_compact()
    }

    /// Number of nodes whose neighbour lists currently live in the delta
    /// overlay rather than the CSR base, per direction `(out, in)`.
    /// Diagnostic for deciding when a [`compact`](DataGraph::compact) pays
    /// off.
    pub fn overlay_sizes(&self) -> (usize, usize) {
        (self.out_adj.overlay_len(), self.in_adj.overlay_len())
    }

    /// Folds the delta overlays of both directions back into freshly-packed
    /// CSR bases, restoring contiguous iteration for every node.
    ///
    /// `O(|V| + |E|)` and a no-op when already compact. Bulk constructors
    /// (builders, IO loaders, the `gpm-datagen` generators) call this once
    /// after loading; long-running incremental workloads may call it at
    /// convenient quiesce points.
    pub fn compact(&mut self) {
        self.out_adj.compact();
        self.in_adj.compact();
    }

    /// The attribute tuple of `v`.
    #[inline]
    pub fn attributes(&self, v: NodeId) -> &Attributes {
        &self.attrs[v.index()]
    }

    /// Mutable access to the attribute tuple of `v`.
    pub fn attributes_mut(&mut self, v: NodeId) -> &mut Attributes {
        &mut self.attrs[v.index()]
    }

    /// Iterates over all node ids `v0, v1, ...` in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.attrs.len() as u32).map(NodeId::new)
    }

    /// Iterates over all edges as `(from, to)` pairs, grouped by source.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |from| self.out_neighbors(from).iter().map(move |&to| (from, to)))
    }

    /// All nodes whose attributes satisfy `pred` — the initial candidate set
    /// `mat(u)` of the matching algorithms.
    pub fn nodes_satisfying<'a>(
        &'a self,
        pred: &'a Predicate,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.nodes()
            .filter(move |&v| pred.satisfied_by(self.attributes(v)))
    }

    /// Whether the attributes of `v` satisfy `pred`.
    #[inline]
    pub fn satisfies(&self, v: NodeId, pred: &Predicate) -> bool {
        pred.satisfied_by(self.attributes(v))
    }

    /// Returns the graph with every edge reversed (attributes shared).
    pub fn reversed(&self) -> DataGraph {
        let mut g = DataGraph::with_capacity(self.node_count());
        for v in self.nodes() {
            g.add_node(self.attributes(v).clone());
        }
        for (a, b) in self.edges() {
            // Original graph has no duplicates, so neither does the reverse.
            g.add_edge(b, a).expect("reversed edge cannot be duplicate");
        }
        g.compact();
        g
    }

    /// The subgraph induced by `keep`: nodes in `keep` (re-indexed densely in
    /// the order given) plus every edge between two kept nodes. Returns the
    /// subgraph and the mapping from new ids to original ids.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DataGraph, Vec<NodeId>) {
        let mut g = DataGraph::with_capacity(keep.len());
        let mut old_to_new = vec![None::<NodeId>; self.node_count()];
        let mut new_to_old = Vec::with_capacity(keep.len());
        for &v in keep {
            if old_to_new[v.index()].is_some() {
                continue;
            }
            let nv = g.add_node(self.attributes(v).clone());
            old_to_new[v.index()] = Some(nv);
            new_to_old.push(v);
        }
        for &v in &new_to_old {
            let nv = old_to_new[v.index()].expect("kept node was mapped");
            for &w in self.out_neighbors(v) {
                if let Some(nw) = old_to_new[w.index()] {
                    g.add_edge(nv, nw).expect("induced edges are unique");
                }
            }
        }
        g.compact();
        (g, new_to_old)
    }

    /// Total degree (in + out) of `v`; handy for hub-ordering heuristics.
    pub fn total_degree(&self, v: NodeId) -> usize {
        self.out_degree(v) + self.in_degree(v)
    }

    /// Builds a graph from an edge list over `n` nodes with empty attributes.
    ///
    /// Duplicate edges in the input are silently ignored.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<DataGraph> {
        let mut g = DataGraph::with_capacity(n);
        g.add_nodes(n);
        for &(a, b) in edges {
            g.try_add_edge(NodeId::new(a), NodeId::new(b))?;
        }
        g.compact();
        Ok(g)
    }

    #[inline]
    fn check_node(&self, v: NodeId) -> Result<()> {
        if self.contains_node(v) {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrValue;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn triangle() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g = DataGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert!(!g.contains_node(n(0)));
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("A"));
        let b = g.add_node(Attributes::labeled("B"));
        assert_eq!(a, n(0));
        assert_eq!(b, n(1));
        g.add_edge(a, b).unwrap();
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.out_neighbors(a), &[b]);
        assert_eq!(g.in_neighbors(b), &[a]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 0);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = DataGraph::new();
        g.add_nodes(2);
        g.add_edge(n(0), n(1)).unwrap();
        assert_eq!(
            g.add_edge(n(0), n(1)),
            Err(GraphError::DuplicateEdge(n(0), n(1)))
        );
        assert_eq!(g.try_add_edge(n(0), n(1)), Ok(false));
        assert_eq!(g.try_add_edge(n(1), n(0)), Ok(true));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut g = DataGraph::new();
        g.add_nodes(1);
        assert_eq!(g.add_edge(n(0), n(5)), Err(GraphError::UnknownNode(n(5))));
        assert_eq!(
            g.remove_edge(n(7), n(0)),
            Err(GraphError::UnknownNode(n(7)))
        );
    }

    #[test]
    fn remove_edge_works_and_errors() {
        let mut g = triangle();
        g.remove_edge(n(0), n(1)).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(n(0), n(1)));
        assert!(g.out_neighbors(n(0)).is_empty());
        assert!(!g.in_neighbors(n(1)).contains(&n(0)));
        assert_eq!(
            g.remove_edge(n(0), n(1)),
            Err(GraphError::MissingEdge(n(0), n(1)))
        );
    }

    #[test]
    fn self_loops_allowed_in_data_graphs() {
        let mut g = DataGraph::new();
        g.add_nodes(1);
        g.add_edge(n(0), n(0)).unwrap();
        assert!(g.has_edge(n(0), n(0)));
        assert_eq!(g.out_degree(n(0)), 1);
        assert_eq!(g.in_degree(n(0)), 1);
    }

    #[test]
    fn attributes_access_and_mutation() {
        let mut g = DataGraph::new();
        let v = g.add_node([("rate", AttrValue::Float(4.5))]);
        assert_eq!(g.attributes(v).get("rate"), Some(&AttrValue::Float(4.5)));
        g.attributes_mut(v).set("rate", 3.0);
        assert_eq!(g.attributes(v).get("rate"), Some(&AttrValue::Float(3.0)));
    }

    #[test]
    fn nodes_and_edges_iterators() {
        let g = triangle();
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes, vec![n(0), n(1), n(2)]);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]);
    }

    #[test]
    fn nodes_satisfying_predicate() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::labeled("A"));
        g.add_node(Attributes::labeled("B"));
        g.add_node(Attributes::labeled("A"));
        let p = Predicate::label("A");
        let matched: Vec<_> = g.nodes_satisfying(&p).collect();
        assert_eq!(matched, vec![n(0), n(2)]);
        assert!(g.satisfies(n(0), &p));
        assert!(!g.satisfies(n(1), &p));
    }

    #[test]
    fn reversed_graph() {
        let g = triangle();
        let r = g.reversed();
        assert_eq!(r.node_count(), 3);
        assert_eq!(r.edge_count(), 3);
        assert!(r.has_edge(n(1), n(0)));
        assert!(r.has_edge(n(2), n(1)));
        assert!(r.has_edge(n(0), n(2)));
    }

    #[test]
    fn induced_subgraph_remaps_ids() {
        let mut g = DataGraph::new();
        g.add_node(Attributes::labeled("A"));
        g.add_node(Attributes::labeled("B"));
        g.add_node(Attributes::labeled("C"));
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        let (sub, mapping) = g.induced_subgraph(&[n(0), n(2)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1); // only (2, 0) survives
        assert_eq!(mapping, vec![n(0), n(2)]);
        assert_eq!(sub.attributes(n(1)).label(), Some("C"));
        assert!(sub.has_edge(n(1), n(0)));
    }

    #[test]
    fn induced_subgraph_ignores_duplicates_in_keep() {
        let g = triangle();
        let (sub, mapping) = g.induced_subgraph(&[n(1), n(1), n(2)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(mapping, vec![n(1), n(2)]);
    }

    #[test]
    fn from_edges_ignores_duplicates() {
        let g = DataGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(DataGraph::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut g = DataGraph::with_capacity(100);
        assert_eq!(g.node_count(), 0);
        g.add_nodes(3);
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn total_degree() {
        let g = triangle();
        assert_eq!(g.total_degree(n(0)), 2);
    }

    #[test]
    fn compact_folds_overlay_and_preserves_neighbors() {
        let mut g = triangle();
        assert_eq!(g.overlay_sizes(), (3, 3)); // built edge-by-edge
        g.compact();
        assert!(g.is_compact());
        assert_eq!(g.overlay_sizes(), (0, 0));
        assert_eq!(g.out_neighbors(n(0)), &[n(1)]);
        assert_eq!(g.in_neighbors(n(0)), &[n(2)]);

        // A post-compaction update dirties exactly the touched endpoints.
        g.add_edge(n(0), n(2)).unwrap();
        assert!(!g.is_compact());
        assert_eq!(g.overlay_sizes(), (1, 1));
        let mut outs = g.out_neighbors(n(0)).to_vec();
        outs.sort();
        assert_eq!(outs, vec![n(1), n(2)]);
        assert_eq!(g.out_neighbors(n(1)), &[n(2)]); // untouched: CSR base

        g.compact();
        assert!(g.is_compact());
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn compact_is_idempotent_and_cheap_on_compact_graphs() {
        let mut g = DataGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.is_compact()); // from_edges compacts on return
        g.compact();
        g.compact();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_neighbors(n(1)), &[n(2)]);
    }

    #[test]
    fn nodes_added_while_overlay_dirty() {
        let mut g = DataGraph::new();
        g.add_nodes(2);
        g.add_edge(n(0), n(1)).unwrap();
        let v = g.add_node(Attributes::labeled("late"));
        g.add_edge(v, n(0)).unwrap();
        assert_eq!(g.out_neighbors(v), &[n(0)]);
        g.compact();
        assert_eq!(g.out_neighbors(v), &[n(0)]);
        assert_eq!(g.in_neighbors(n(0)), &[v]);
        assert_eq!(g.attributes(v).label(), Some("late"));
    }

    proptest! {
        /// Adding then removing a random set of edges leaves counts and
        /// adjacency membership consistent with the edge set.
        #[test]
        fn prop_edge_bookkeeping(edges in proptest::collection::vec((0u32..20, 0u32..20), 0..120)) {
            let mut g = DataGraph::new();
            g.add_nodes(20);
            let mut reference = std::collections::HashSet::new();
            for &(a, b) in &edges {
                let inserted = g.try_add_edge(n(a), n(b)).unwrap();
                prop_assert_eq!(inserted, reference.insert((a, b)));
            }
            prop_assert_eq!(g.edge_count(), reference.len());
            // Remove half of them.
            for &(a, b) in edges.iter().step_by(2) {
                if reference.remove(&(a, b)) {
                    g.remove_edge(n(a), n(b)).unwrap();
                } else {
                    prop_assert!(g.remove_edge(n(a), n(b)).is_err());
                }
            }
            prop_assert_eq!(g.edge_count(), reference.len());
            for a in 0..20u32 {
                for b in 0..20u32 {
                    prop_assert_eq!(g.has_edge(n(a), n(b)), reference.contains(&(a, b)));
                }
            }
            // Adjacency lists agree with the edge set.
            for a in 0..20u32 {
                for &b in g.out_neighbors(n(a)) {
                    prop_assert!(reference.contains(&(a, b.0)));
                }
                for &b in g.in_neighbors(n(a)) {
                    prop_assert!(reference.contains(&(b.0, a)));
                }
            }
        }

        /// Interleaving edge insertions, deletions and compactions leaves
        /// the neighbour sets exactly as the pre-CSR `Vec<Vec<_>>` layout
        /// would have them: equal to the edge set, in both directions.
        #[test]
        fn prop_csr_overlay_matches_edge_set_under_compaction(
            ops in proptest::collection::vec((0u32..15, 0u32..15, 0u8..8), 0..160),
        ) {
            let mut g = DataGraph::new();
            g.add_nodes(15);
            let mut reference = std::collections::HashSet::new();
            for &(a, b, kind) in &ops {
                match kind {
                    0..=4 => {
                        let inserted = g.try_add_edge(n(a), n(b)).unwrap();
                        prop_assert_eq!(inserted, reference.insert((a, b)));
                    }
                    5..=6 => {
                        if reference.remove(&(a, b)) {
                            g.remove_edge(n(a), n(b)).unwrap();
                        } else {
                            prop_assert!(g.remove_edge(n(a), n(b)).is_err());
                        }
                    }
                    _ => {
                        g.compact();
                        prop_assert!(g.is_compact());
                    }
                }
                prop_assert_eq!(g.edge_count(), reference.len());
            }
            // Neighbour sets agree with the reference edge set in both
            // directions, before and after a final compaction.
            for pass in 0..2 {
                for a in 0..15u32 {
                    let mut outs: Vec<u32> = g.out_neighbors(n(a)).iter().map(|w| w.0).collect();
                    outs.sort_unstable();
                    let mut expected: Vec<u32> = reference
                        .iter()
                        .filter(|&&(x, _)| x == a)
                        .map(|&(_, y)| y)
                        .collect();
                    expected.sort_unstable();
                    prop_assert_eq!(outs, expected, "out({}) pass {}", a, pass);
                    let mut ins: Vec<u32> = g.in_neighbors(n(a)).iter().map(|w| w.0).collect();
                    ins.sort_unstable();
                    let mut expected: Vec<u32> = reference
                        .iter()
                        .filter(|&&(_, y)| y == a)
                        .map(|&(x, _)| x)
                        .collect();
                    expected.sort_unstable();
                    prop_assert_eq!(ins, expected, "in({}) pass {}", a, pass);
                }
                g.compact();
            }
        }

        /// `reversed` is an involution on the edge set.
        #[test]
        fn prop_reverse_involution(edges in proptest::collection::vec((0u32..12, 0u32..12), 0..60)) {
            let mut g = DataGraph::new();
            g.add_nodes(12);
            for &(a, b) in &edges {
                let _ = g.try_add_edge(n(a), n(b)).unwrap();
            }
            let rr = g.reversed().reversed();
            prop_assert_eq!(rr.edge_count(), g.edge_count());
            for (a, b) in g.edges() {
                prop_assert!(rr.has_edge(a, b));
            }
        }
    }
}
