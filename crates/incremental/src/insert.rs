//! `Match+` — incremental maintenance under a single edge **insertion**
//! (Fig. 7 of the paper). Requires a DAG pattern; data graphs may be cyclic.
//!
//! An insertion can only *decrease* distances, so matches can only appear.
//! The algorithm:
//!
//! 1. update the distance matrix with `UpdateM`, obtaining `AFF1`;
//! 2. for every data node whose outgoing distances shrank, check whether it
//!    is a candidate (`can(u')`) of some pattern node that now has **all** of
//!    its pattern edges witnessed; such nodes become new matches and are
//!    pushed on a worklist;
//! 3. pop newly added matches `(u, y)` and re-examine the candidates of
//!    pattern parents of `u` that can reach `y` within the bound, cascading
//!    additions until the fixpoint.
//!
//! For cyclic patterns a set of candidates can be *mutually* dependent (each
//! needs the others to already be matched), which upward propagation cannot
//! discover — this is exactly why the paper restricts `Match+`/`IncMatch` to
//! DAG patterns; [`match_plus`] returns [`GraphError::PatternNotAcyclic`] in
//! that case (the [`crate::IncrementalMatcher`] facade falls back to
//! recomputation instead).

use crate::affected::{Aff2, IncrementalOutcome};
use crate::state::MatchState;
use gpm_distance::DistanceOracle;
use gpm_exec::Executor;
use gpm_graph::{DataGraph, GraphError, NodeId, PatternGraph, PatternNodeId};
use rustc_hash::FxHashSet;

/// Applies the insertion of `(from, to)` to `graph`, maintains `oracle` and
/// `state`, and reports the affected areas.
///
/// Errors with [`GraphError::PatternNotAcyclic`] for cyclic patterns and
/// [`GraphError::DuplicateEdge`] if the edge already exists; nothing is
/// modified in either case.
pub fn match_plus<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &mut DataGraph,
    oracle: &mut O,
    state: &mut MatchState,
    from: NodeId,
    to: NodeId,
) -> Result<IncrementalOutcome, GraphError> {
    pattern.require_dag()?;
    graph.add_edge(from, to)?;
    let aff1 = oracle.apply_insert(graph, from, to, &Executor::from_env());

    let sources: FxHashSet<NodeId> = aff1
        .iter()
        .filter(|p| !p.increased())
        .map(|p| p.source)
        .collect();
    let mut aff2 = Aff2::default();
    let mut verifications = 0usize;
    process_additions(
        pattern,
        graph,
        oracle,
        state,
        &sources,
        &mut aff2,
        &mut verifications,
    );
    Ok(IncrementalOutcome::new(aff1, aff2, verifications))
}

/// Whether candidate `x` of pattern node `u` has every out-edge of `u`
/// witnessed by the current match sets.
#[inline]
pub(crate) fn fully_witnessed<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    state: &MatchState,
    u: PatternNodeId,
    x: NodeId,
    verifications: &mut usize,
) -> bool {
    for e in pattern.out_edges(u) {
        *verifications += 1;
        let ok = state
            .matches_of(e.to)
            .into_iter()
            .any(|y| oracle.within(graph, x, y, e.bound));
        if !ok {
            return false;
        }
    }
    true
}

/// Addition propagation shared by `Match+` and the insertion side of
/// `IncMatch`. `sources` are the data nodes whose *outgoing* distances
/// decreased.
pub(crate) fn process_additions<O: DistanceOracle + ?Sized>(
    pattern: &PatternGraph,
    graph: &DataGraph,
    oracle: &O,
    state: &mut MatchState,
    sources: &FxHashSet<NodeId>,
    aff2: &mut Aff2,
    verifications: &mut usize,
) {
    let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();

    // Step 2: seed from the affected sources.
    for &v in sources {
        for u in pattern.node_ids() {
            if !state.in_can(u, v) {
                continue;
            }
            if fully_witnessed(pattern, graph, oracle, state, u, v, verifications) {
                state.add(u, v);
                aff2.added.push((u, v));
                worklist.push((u, v));
            }
        }
    }

    // Step 3: cascade to pattern parents of newly added matches.
    while let Some((u, y)) = worklist.pop() {
        for e in pattern.in_edges(u) {
            let parent = e.from;
            for x in state.candidates_of(parent) {
                if !oracle.within(graph, x, y, e.bound) {
                    continue;
                }
                if fully_witnessed(pattern, graph, oracle, state, parent, x, verifications) {
                    state.add(parent, x);
                    aff2.added.push((parent, x));
                    worklist.push((parent, x));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_core::bounded_simulation_with_oracle;
    use gpm_distance::DistanceMatrix;
    use gpm_graph::{DataGraphBuilder, PatternGraphBuilder};

    /// a A, b B, c C with only a -> b; pattern A -[2]-> C (not matched yet).
    fn setup() -> (DataGraph, PatternGraph, DistanceMatrix, MatchState) {
        let (g, _) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .edge("A", "B")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("C")
            .edge("A", "C", 2u32)
            .build()
            .unwrap();
        let m = DistanceMatrix::build(&g);
        let s = MatchState::initialise(&p, &g, &m);
        (g, p, m, s)
    }

    #[test]
    fn insertion_creates_the_match() {
        let (mut g, p, mut m, mut s) = setup();
        assert!(s.relation().is_empty());
        let out = match_plus(&p, &mut g, &mut m, &mut s, NodeId::new(1), NodeId::new(2)).unwrap();
        assert!(s.relation().is_match(&p));
        // Node c was already matched to pattern node C before the insertion
        // (C has no out-edges); the insertion only adds the (A, a) pair.
        assert!(out
            .aff2
            .added
            .contains(&(gpm_graph::PatternNodeId::new(0), NodeId::new(0))));
        assert!(s
            .relation()
            .contains(gpm_graph::PatternNodeId::new(1), NodeId::new(2)));
        assert!(out.aff2.removed.is_empty());
        assert_eq!(m, DistanceMatrix::build(&g));
        // Incremental state equals a from-scratch run.
        let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
        assert_eq!(s.relation(), recomputed.relation);
    }

    #[test]
    fn cascading_additions_up_a_chain() {
        // Data a(A) -> b(B), c(C), d(D) with pattern A-[1]->B-[1]->C-[1]->D.
        // Inserting edges bottom-up should cascade matches upward once the
        // last edge lands.
        let (mut g, names) = DataGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .labeled_node("D")
            .edge("A", "B")
            .edge("B", "C")
            .build()
            .unwrap();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .labeled_node("C")
            .labeled_node("D")
            .edge("A", "B", 1u32)
            .edge("B", "C", 1u32)
            .edge("C", "D", 1u32)
            .build()
            .unwrap();
        let mut m = DistanceMatrix::build(&g);
        let mut s = MatchState::initialise(&p, &g, &m);
        assert!(s.relation().is_empty());

        let out = match_plus(&p, &mut g, &mut m, &mut s, names["C"], names["D"]).unwrap();
        assert!(s.relation().is_match(&p));
        // Pattern node D was already matched (no out-edges); the cascade adds
        // the matches of C, B and A bottom-up.
        assert_eq!(out.aff2.added.len(), 3);
        let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
        assert_eq!(s.relation(), recomputed.relation);
    }

    #[test]
    fn duplicate_insertion_is_an_error() {
        let (mut g, p, mut m, mut s) = setup();
        let err = match_plus(&p, &mut g, &mut m, &mut s, NodeId::new(0), NodeId::new(1));
        assert!(err.is_err());
    }

    #[test]
    fn cyclic_pattern_is_rejected() {
        let (mut g, _, mut m, _) = setup();
        let (p, _) = PatternGraphBuilder::new()
            .labeled_node("A")
            .labeled_node("B")
            .edge("A", "B", 1u32)
            .edge("B", "A", 1u32)
            .build()
            .unwrap();
        let mut s = MatchState::initialise(&p, &g, &m);
        let err = match_plus(&p, &mut g, &mut m, &mut s, NodeId::new(1), NodeId::new(2));
        assert_eq!(err.unwrap_err(), GraphError::PatternNotAcyclic);
    }

    #[test]
    fn irrelevant_insertion_changes_nothing() {
        let (mut g, p, mut m, mut s) = setup();
        // b -> a creates no new witnesses for A -[2]-> C.
        let out = match_plus(&p, &mut g, &mut m, &mut s, NodeId::new(1), NodeId::new(0)).unwrap();
        assert!(out.aff2.is_empty());
        assert!(s.relation().is_empty());
        let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
        assert_eq!(s.relation(), recomputed.relation);
    }

    #[test]
    fn insertion_matches_recompute_on_random_updates() {
        use gpm_datagen::{random_graph, RandomGraphConfig};
        use rand::rngs::StdRng;
        use rand::{Rng as _, SeedableRng as _};

        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = random_graph(&RandomGraphConfig::new(40, 80, 4).with_seed(seed));
            // DAG pattern over the generated labels.
            let (p, _) = PatternGraphBuilder::new()
                .node("x", gpm_graph::Predicate::label("a0"))
                .node("y", gpm_graph::Predicate::label("a1"))
                .node("z", gpm_graph::Predicate::label("a2"))
                .edge("x", "y", 2u32)
                .edge("y", "z", 3u32)
                .edge("x", "z", 4u32)
                .build()
                .unwrap();
            let mut m = DistanceMatrix::build(&g);
            let mut s = MatchState::initialise(&p, &g, &m);
            for _ in 0..8 {
                // Pick a random non-edge and insert it.
                let a = NodeId::new(rng.gen_range(0..g.node_count() as u32));
                let b = NodeId::new(rng.gen_range(0..g.node_count() as u32));
                if g.has_edge(a, b) {
                    continue;
                }
                match_plus(&p, &mut g, &mut m, &mut s, a, b).unwrap();
                let recomputed = bounded_simulation_with_oracle(&p, &g, &m);
                assert_eq!(s.relation(), recomputed.relation, "seed {seed}");
            }
        }
    }
}
