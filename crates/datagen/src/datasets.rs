//! Simulated real-life datasets.
//!
//! Section 5 evaluates on three real-life graphs:
//!
//! | dataset | `|V|`  | `|E|`  | description                                   |
//! |---------|--------|--------|-----------------------------------------------|
//! | Matter  | 16 726 | 47 594 | co-authorships, Condensed Matter archive      |
//! | PBlog   | 1 490  | 19 090 | US politics weblogs connected by hyperlinks   |
//! | YouTube | 14 829 | 58 901 | crawled videos connected by recommendations   |
//!
//! The crawls themselves are not redistributable, so this module builds
//! synthetic stand-ins with the same node/edge counts, a preferential-
//! attachment backbone (skewed degrees, as in the originals) and the
//! attribute schemas the paper describes (Example 2.3 lists the YouTube
//! attributes: submitter, category, length, rate and age; we add views and
//! comments which the sample patterns P' of Fig. 6(a) also query).
//!
//! Every generator accepts a `scale` factor so the harness can run at laptop-
//! friendly sizes by default and at full paper size with `scale = 1.0`.

use crate::powerlaw::{powerlaw_graph, PowerLawConfig};
use gpm_graph::{Attributes, DataGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three real-life datasets of the paper's evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Condensed Matter co-authorship network.
    Matter,
    /// US political weblogs.
    PBlog,
    /// YouTube video recommendation network.
    YouTube,
}

/// Static description of a dataset: paper-reported size plus schema name.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub dataset: Dataset,
    /// Human-readable name as used in the paper's tables.
    pub name: &'static str,
    /// `|V|` reported in the paper.
    pub nodes: usize,
    /// `|E|` reported in the paper.
    pub edges: usize,
}

impl Dataset {
    /// All three datasets, in the order of the paper's size table.
    pub const ALL: [Dataset; 3] = [Dataset::Matter, Dataset::PBlog, Dataset::YouTube];

    /// The dataset's paper-reported sizes and name.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Matter => DatasetSpec {
                dataset: self,
                name: "Matter",
                nodes: 16_726,
                edges: 47_594,
            },
            Dataset::PBlog => DatasetSpec {
                dataset: self,
                name: "PBlog",
                nodes: 1_490,
                edges: 19_090,
            },
            Dataset::YouTube => DatasetSpec {
                dataset: self,
                name: "YouTube",
                nodes: 14_829,
                edges: 58_901,
            },
        }
    }

    /// Generates the simulated dataset at the given `scale` (1.0 = the
    /// paper's size; the default harness scale is smaller), deterministically
    /// for a given `seed`.
    pub fn generate(self, scale: f64, seed: u64) -> DataGraph {
        let spec = self.spec();
        let nodes = ((spec.nodes as f64 * scale).round() as usize).max(16);
        let edges = ((spec.edges as f64 * scale).round() as usize).max(32);
        let mut g = powerlaw_graph(&PowerLawConfig {
            nodes,
            edges,
            back_edge_fraction: 0.35,
            // Real co-authorship / hyperlink / recommendation graphs are
            // highly reciprocal and triangle-rich; this is what keeps the
            // affected area of single-edge updates small (Exp-3).
            reciprocal_fraction: 0.35,
            closure_fraction: 0.35,
            seed,
        });
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        match self {
            Dataset::Matter => assign_matter_attributes(&mut g, &mut rng),
            Dataset::PBlog => assign_pblog_attributes(&mut g, &mut rng),
            Dataset::YouTube => assign_youtube_attributes(&mut g, &mut rng),
        }
        g
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// YouTube video categories used by the sample patterns of Fig. 6(a).
pub const YOUTUBE_CATEGORIES: [&str; 8] = [
    "Music",
    "Comedy",
    "People",
    "Travel & Places",
    "Politics",
    "Science",
    "Entertainment",
    "Sports",
];

/// A small pool of uploader names; the paper's patterns mention specific
/// uploaders ("FWPB", "Ascrodin", "Gisburgh", "neil010"), which are kept so
/// the example patterns have non-empty candidate sets.
pub const YOUTUBE_UPLOADERS: [&str; 12] = [
    "FWPB", "Ascrodin", "Gisburgh", "neil010", "user4", "user5", "user6", "user7", "user8",
    "user9", "user10", "user11",
];

fn assign_youtube_attributes(g: &mut DataGraph, rng: &mut StdRng) {
    for v in g.nodes().collect::<Vec<_>>() {
        let category = YOUTUBE_CATEGORIES[rng.gen_range(0..YOUTUBE_CATEGORIES.len())];
        let uploader = YOUTUBE_UPLOADERS[rng.gen_range(0..YOUTUBE_UPLOADERS.len())];
        let attrs = Attributes::new()
            .with("category", category)
            .with("uploader", uploader)
            .with("length", rng.gen_range(10..1_200i64)) // seconds
            .with("rate", (rng.gen_range(0..50) as f64) / 10.0) // 0.0 - 5.0
            .with("ratings", rng.gen_range(0..200i64))
            .with("age", rng.gen_range(1..1_500i64)) // days since upload
            .with("views", rng.gen_range(0..100_000i64))
            .with("comments", rng.gen_range(0..500i64));
        *g.attributes_mut(v) = attrs;
    }
}

/// Research areas for the co-authorship network.
pub const MATTER_FIELDS: [&str; 6] = [
    "superconductivity",
    "magnetism",
    "soft-matter",
    "nanostructures",
    "statistical",
    "quantum-gases",
];

fn assign_matter_attributes(g: &mut DataGraph, rng: &mut StdRng) {
    for v in g.nodes().collect::<Vec<_>>() {
        let field = MATTER_FIELDS[rng.gen_range(0..MATTER_FIELDS.len())];
        let attrs = Attributes::new()
            .with("field", field)
            .with("papers", rng.gen_range(1..120i64))
            .with("citations", rng.gen_range(0..5_000i64))
            .with("active_since", rng.gen_range(1970..2010i64));
        *g.attributes_mut(v) = attrs;
    }
}

fn assign_pblog_attributes(g: &mut DataGraph, rng: &mut StdRng) {
    for v in g.nodes().collect::<Vec<_>>() {
        let leaning = if rng.gen_bool(0.5) {
            "liberal"
        } else {
            "conservative"
        };
        let attrs = Attributes::new()
            .with("leaning", leaning)
            .with("posts", rng.gen_range(1..2_000i64))
            .with("links_out", rng.gen_range(0..300i64))
            .with("rank", rng.gen_range(1..1_500i64));
        *g.attributes_mut(v) = attrs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_table() {
        assert_eq!(Dataset::Matter.spec().nodes, 16_726);
        assert_eq!(Dataset::Matter.spec().edges, 47_594);
        assert_eq!(Dataset::PBlog.spec().nodes, 1_490);
        assert_eq!(Dataset::PBlog.spec().edges, 19_090);
        assert_eq!(Dataset::YouTube.spec().nodes, 14_829);
        assert_eq!(Dataset::YouTube.spec().edges, 58_901);
        assert_eq!(Dataset::ALL.len(), 3);
        assert_eq!(Dataset::YouTube.to_string(), "YouTube");
    }

    #[test]
    fn scaled_generation_has_expected_size() {
        let g = Dataset::PBlog.generate(0.5, 1);
        assert_eq!(g.node_count(), 745);
        assert_eq!(g.edge_count(), 9_545);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::YouTube.generate(0.05, 7);
        let b = Dataset::YouTube.generate(0.05, 7);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.nodes() {
            assert_eq!(a.attributes(v), b.attributes(v));
        }
    }

    #[test]
    fn youtube_schema_is_complete() {
        let g = Dataset::YouTube.generate(0.02, 3);
        for v in g.nodes() {
            let attrs = g.attributes(v);
            for key in [
                "category", "uploader", "length", "rate", "age", "views", "comments",
            ] {
                assert!(attrs.contains(key), "missing attribute {key}");
            }
            let rate = attrs.get("rate").unwrap().as_f64().unwrap();
            assert!((0.0..=5.0).contains(&rate));
        }
    }

    #[test]
    fn matter_and_pblog_schemas() {
        let m = Dataset::Matter.generate(0.01, 4);
        for v in m.nodes() {
            assert!(m.attributes(v).contains("field"));
            assert!(m.attributes(v).contains("papers"));
        }
        let p = Dataset::PBlog.generate(0.05, 4);
        for v in p.nodes() {
            let leaning = p.attributes(v).get("leaning").unwrap().as_str().unwrap();
            assert!(leaning == "liberal" || leaning == "conservative");
        }
    }

    #[test]
    fn tiny_scale_is_clamped() {
        let g = Dataset::Matter.generate(0.0001, 5);
        assert!(g.node_count() >= 16);
        assert!(g.edge_count() >= 32);
    }
}
