//! The wire message vocabulary.
//!
//! Every message — request, response or stream element — is one compact
//! JSON document inside one CRC-framed envelope (see [`crate::codec`]).
//! `PROTOCOL.md` in the repository root is the normative spec: field
//! tables, the handshake rules, the error and backpressure semantics, and
//! a worked byte-level exchange (pinned by a test in this module, so spec
//! and implementation cannot drift).
//!
//! The conversation shape is deliberately minimal:
//!
//! 1. the client opens with [`Request::Hello`]; the server answers
//!    [`Response::HelloAck`] (or an [`ErrorCode::UnsupportedVersion`] error
//!    and closes);
//! 2. request/response pairs follow in lockstep — one response per request,
//!    in order, no pipelining obligations on the server;
//! 3. a [`Request::Subscribe`] answered by [`Response::Subscribed`]
//!    converts the connection into a one-way delta stream: from then on the
//!    server sends only [`StreamMsg`] frames and ignores nothing — further
//!    client frames are a protocol violation.

use gpm_core::MatchRelation;
use gpm_distance::EdgeUpdate;
use gpm_graph::PatternGraph;
use gpm_service::MatchDelta;
use serde::{Deserialize, Serialize};

/// Version carried by the [`Request::Hello`]/[`Response::HelloAck`]
/// handshake. Servers refuse clients whose version differs; there is no
/// negotiation below the newest version (the protocol is young).
pub const PROTOCOL_VERSION: u32 = 1;

/// A client-to-server message.
///
/// Mutating requests map one-to-one onto [`gpm_service::MatchService`]
/// methods, and the server executes them under one service-wide lock, so a
/// wire client observes exactly the in-process semantics (same epochs, same
/// deltas, same catalog behaviour).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Mandatory first message of every connection.
    Hello {
        /// Must equal [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// `MatchService::register` — computes the initial match immediately.
    Register {
        /// The standing pattern to register.
        pattern: PatternGraph,
    },
    /// `MatchService::deregister`.
    Deregister {
        /// Raw [`gpm_service::QueryId`] value.
        query: u64,
    },
    /// `MatchService::suspend`.
    Suspend {
        /// Raw [`gpm_service::QueryId`] value.
        query: u64,
    },
    /// `MatchService::resume` (lazy, exactly like the in-process call).
    Resume {
        /// Raw [`gpm_service::QueryId`] value.
        query: u64,
    },
    /// `MatchService::apply` — one update batch, applied atomically.
    ApplyBatch {
        /// The edge updates, in application order.
        updates: Vec<EdgeUpdate>,
    },
    /// `MatchService::result` — the query's current visible relation.
    Result {
        /// Raw [`gpm_service::QueryId`] value.
        query: u64,
    },
    /// Converts this connection into a delta stream for one query. The
    /// first streamed delta is a snapshot of the result at subscribe time
    /// (fold the stream from an empty relation to reproduce the live
    /// result), exactly like `MatchService::subscribe`.
    Subscribe {
        /// Raw [`gpm_service::QueryId`] value.
        query: u64,
    },
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
}

/// A server-to-client answer. Exactly one per [`Request`], in order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Successful handshake.
    HelloAck {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// The service's distance-oracle backend name (`"matrix"` /
        /// `"two-hop"`) — diagnostic, not contractual.
        backend: String,
        /// The service epoch at handshake time.
        epoch: u64,
    },
    /// Answer to [`Request::Register`].
    Registered {
        /// The raw id assigned to the new query.
        query: u64,
    },
    /// Answer to deregister/suspend/resume.
    Done {
        /// Whether the id named a registered query (`false` = no-op).
        known: bool,
    },
    /// Answer to [`Request::ApplyBatch`] — the full
    /// [`gpm_service::BatchOutcome`] of the batch.
    Applied {
        /// The epoch the batch was assigned.
        epoch: u64,
        /// Updates that took effect (no-ops excluded).
        applied: u64,
        /// `|AFF1|` of the shared distance maintenance.
        aff1: u64,
        /// Every non-empty per-query delta, in registration order.
        deltas: Vec<MatchDelta>,
    },
    /// Answer to [`Request::Result`].
    ResultRelation {
        /// The visible relation; `None` for unknown or suspended queries.
        relation: Option<MatchRelation>,
    },
    /// Answer to [`Request::Subscribe`]; every following server frame is a
    /// [`StreamMsg`].
    Subscribed {
        /// Echo of the subscribed query id.
        query: u64,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Any request the server refuses. After protocol-level errors
    /// ([`ErrorCode::BadFrame`], [`ErrorCode::BadHandshake`],
    /// [`ErrorCode::UnsupportedVersion`]) the server also closes the
    /// connection; service-level errors ([`ErrorCode::UnknownQuery`]) leave
    /// it usable.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Machine-readable classes for [`Response::Error`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The first message was not a [`Request::Hello`].
    BadHandshake,
    /// The hello's version differs from the server's.
    UnsupportedVersion,
    /// A frame failed its integrity envelope (CRC mismatch, oversized
    /// length field, or an undecodable payload). Connection closes.
    BadFrame,
    /// A structurally valid request the server cannot serve in this state
    /// (e.g. any request after the connection became a delta stream).
    BadRequest,
    /// A subscribe named an id with no registered query.
    UnknownQuery,
    /// Reserved for internal failures.
    Internal,
}

/// A server-to-client element of a subscription stream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StreamMsg {
    /// One delta, in emission order. The first is always the subscribe-time
    /// snapshot.
    Delta(MatchDelta),
    /// Explicit end of stream; the server closes the connection right after
    /// writing it. Streams are never silently dropped: a subscriber either
    /// sees this frame or a socket error, not a quiet gap.
    End {
        /// Why the stream ended.
        reason: EndReason,
    },
}

/// Why a subscription stream ended ([`StreamMsg::End`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndReason {
    /// The query was deregistered (or the service shut down).
    QueryClosed,
    /// The subscriber fell behind a full queue under
    /// [`crate::BackpressurePolicy::Disconnect`].
    Backpressure,
    /// The server is shutting down.
    ServerShutdown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::PatternGraphBuilder;
    use gpm_graph::{NodeId, PatternNodeId};
    use gpm_service::QueryId;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(msg: &T) {
        let text = serde_json::to_string(msg).unwrap();
        let back: T = serde_json::from_str(&text).unwrap();
        assert_eq!(&back, msg, "roundtrip changed {text}");
    }

    /// Pins the worked byte-level example of PROTOCOL.md ("A worked
    /// exchange"): if the wire encoding of the register→apply→delta
    /// conversation changes, this test and the spec must change together.
    #[test]
    fn worked_example_bytes_match_protocol_md() {
        let (pattern, _) = PatternGraphBuilder::new()
            .labeled_node("a")
            .labeled_node("b")
            .edge("a", "b", 2u32)
            .build()
            .unwrap();
        let frames = [
            (
                "Hello",
                crate::codec::encode_message(&Request::Hello { version: 1 }).unwrap(),
            ),
            (
                "Register",
                crate::codec::encode_message(&Request::Register { pattern }).unwrap(),
            ),
            (
                "ApplyBatch",
                crate::codec::encode_message(&Request::ApplyBatch {
                    updates: vec![EdgeUpdate::Insert(NodeId::new(1), NodeId::new(2))],
                })
                .unwrap(),
            ),
            (
                "Delta",
                crate::codec::encode_message(&StreamMsg::Delta(MatchDelta {
                    query: QueryId::from_raw(0),
                    epoch: 1,
                    added: vec![(PatternNodeId::new(1), NodeId::new(2))],
                    removed: vec![],
                }))
                .unwrap(),
            ),
        ];
        let hex = |frame: &[u8]| -> String { frame.iter().map(|b| format!("{b:02x}")).collect() };
        let payload =
            |frame: &[u8]| -> String { std::str::from_utf8(&frame[8..]).unwrap().to_string() };

        // The exact frames shown in PROTOCOL.md's "A worked exchange".
        assert_eq!(
            hex(&frames[0].1),
            "170000001d7e03f97b2248656c6c6f223a7b2276657273696f6e223a317d7d"
        );
        assert_eq!(payload(&frames[0].1), r#"{"Hello":{"version":1}}"#);

        assert_eq!(hex(&frames[1].1)[..16], *"2e010000090ee3d1");
        assert!(payload(&frames[1].1).starts_with(r#"{"Register":{"pattern":{"nodes":"#));

        assert_eq!(
            hex(&frames[2].1),
            "2d000000fd2431ca7b224170706c794261746368223a7b2275706461746573223a5b7b22496e7365\
             7274223a5b312c325d7d5d7d7d"
                .replace(char::is_whitespace, "")
        );
        assert_eq!(
            payload(&frames[2].1),
            r#"{"ApplyBatch":{"updates":[{"Insert":[1,2]}]}}"#
        );

        assert_eq!(
            hex(&frames[3].1),
            "3c000000b52ce2507b2244656c7461223a7b227175657279223a302c2265706f6368223a312c2261\
             64646564223a5b5b312c325d5d2c2272656d6f766564223a5b5d7d7d"
                .replace(char::is_whitespace, "")
        );
        assert_eq!(
            payload(&frames[3].1),
            r#"{"Delta":{"query":0,"epoch":1,"added":[[1,2]],"removed":[]}}"#
        );
    }

    #[test]
    fn every_message_shape_roundtrips() {
        let (pattern, _) = PatternGraphBuilder::new()
            .labeled_node("a")
            .labeled_node("b")
            .edge("a", "b", 2u32)
            .build()
            .unwrap();
        let delta = MatchDelta {
            query: QueryId::from_raw(3),
            epoch: 7,
            added: vec![(PatternNodeId::new(0), NodeId::new(4))],
            removed: vec![(PatternNodeId::new(1), NodeId::new(9))],
        };
        roundtrip(&Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip(&Request::Register { pattern });
        roundtrip(&Request::Deregister { query: 1 });
        roundtrip(&Request::Suspend { query: 2 });
        roundtrip(&Request::Resume { query: 2 });
        roundtrip(&Request::ApplyBatch {
            updates: vec![
                EdgeUpdate::Insert(NodeId::new(0), NodeId::new(1)),
                EdgeUpdate::Delete(NodeId::new(2), NodeId::new(3)),
            ],
        });
        roundtrip(&Request::Result { query: 3 });
        roundtrip(&Request::Subscribe { query: 3 });
        roundtrip(&Request::Ping);

        roundtrip(&Response::HelloAck {
            version: PROTOCOL_VERSION,
            backend: "matrix".to_string(),
            epoch: 0,
        });
        roundtrip(&Response::Registered { query: 5 });
        roundtrip(&Response::Done { known: true });
        roundtrip(&Response::Applied {
            epoch: 1,
            applied: 2,
            aff1: 3,
            deltas: vec![delta.clone()],
        });
        roundtrip(&Response::ResultRelation {
            relation: Some(MatchRelation::from_sets(vec![vec![NodeId::new(1)]])),
        });
        roundtrip(&Response::ResultRelation { relation: None });
        roundtrip(&Response::Subscribed { query: 3 });
        roundtrip(&Response::Pong);
        roundtrip(&Response::Error {
            code: ErrorCode::UnknownQuery,
            message: "q99".to_string(),
        });

        roundtrip(&StreamMsg::Delta(delta));
        roundtrip(&StreamMsg::End {
            reason: EndReason::Backpressure,
        });
    }
}
