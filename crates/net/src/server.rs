//! Thread-per-connection server exposing one [`MatchService`] on a socket.
//!
//! Every connection talks the lockstep protocol of [`crate::proto`]; one
//! service-wide [`Mutex`] serialises all mutations, so wire clients observe
//! exactly the in-process semantics — same epochs, same registration-order
//! delta emission, bit-identical streams.
//!
//! # Delta fan-out
//!
//! Each wire subscriber is backed by a real in-process
//! [`gpm_service::Subscription`] — the service's own channel is the source
//! of truth for what a subscriber must see. After every request that can
//! emit deltas the server *pumps*: still holding the service lock, it
//! drains each backing subscription and forwards the deltas into that
//! subscriber's bounded queue. A writer thread per subscriber moves queue
//! entries onto the socket. Because the pump runs under the service lock,
//! the interleaving of batches and forwarded deltas is identical for every
//! subscriber regardless of thread count.
//!
//! # Backpressure
//!
//! The per-subscriber queue is bounded ([`ServerOptions::subscriber_queue`]).
//! When it fills, [`ServerOptions::backpressure`] decides:
//!
//! * [`BackpressurePolicy::Block`] — the pump blocks, which blocks the
//!   request being served. Slow subscribers slow the service; nothing is
//!   ever dropped.
//! * [`BackpressurePolicy::Disconnect`] — the subscriber is kicked: its
//!   stream ends with [`StreamMsg::End`] / [`EndReason::Backpressure`]
//!   after the queued deltas drain. Dropping is always *explicit*, never a
//!   silent gap in the stream.

use crate::codec::{read_message, write_message, ReadOutcome};
use crate::error::NetError;
use crate::metrics;
use crate::proto::{EndReason, ErrorCode, Request, Response, StreamMsg, PROTOCOL_VERSION};
use gpm_service::{MatchDelta, MatchService, QueryId, Subscription, SubscriptionPoll};
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;

/// What to do with a subscriber whose bounded queue is full.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the producing request until the subscriber drains. Nothing is
    /// dropped; slow subscribers slow the whole service.
    Block,
    /// Disconnect the subscriber with an explicit
    /// [`EndReason::Backpressure`] end-of-stream marker.
    Disconnect,
}

/// Tunables for [`NetServer`].
#[derive(Copy, Clone, Debug)]
pub struct ServerOptions {
    /// Bounded depth of each subscriber's delta queue (messages, not
    /// bytes). Must be at least 1.
    pub subscriber_queue: usize,
    /// Policy when a subscriber's queue is full.
    pub backpressure: BackpressurePolicy,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            subscriber_queue: 1024,
            backpressure: BackpressurePolicy::Block,
        }
    }
}

/// One wire subscriber: the in-process subscription it mirrors, the bounded
/// queue its writer thread drains, and the slot that records why its stream
/// ended.
struct NetSub {
    sub: Subscription,
    tx: SyncSender<MatchDelta>,
    end: Arc<Mutex<Option<EndReason>>>,
}

struct Shared {
    svc: Mutex<MatchService>,
    subs: Mutex<Vec<NetSub>>,
    opts: ServerOptions,
}

impl Shared {
    /// Forwards every newly buffered delta from each backing subscription
    /// into its wire queue. Must run while the caller still holds the
    /// service lock, so stream order is the service's emission order.
    fn pump(&self) {
        let obs = metrics::net();
        let mut subs = self.subs.lock();
        subs.retain(|s| loop {
            match s.sub.poll() {
                SubscriptionPoll::Delta(d) => {
                    match self.opts.backpressure {
                        BackpressurePolicy::Block => {
                            if s.tx.send(d).is_err() {
                                // Writer gone (client hung up); forget it.
                                return false;
                            }
                        }
                        BackpressurePolicy::Disconnect => match s.tx.try_send(d) {
                            Ok(()) => {}
                            Err(TrySendError::Full(_)) => {
                                *s.end.lock() = Some(EndReason::Backpressure);
                                obs.kicked_subscribers.inc();
                                return false;
                            }
                            Err(TrySendError::Disconnected(_)) => return false,
                        },
                    }
                    obs.deltas_streamed.inc();
                }
                SubscriptionPoll::Empty => return true,
                SubscriptionPoll::Closed => {
                    *s.end.lock() = Some(EndReason::QueryClosed);
                    return false;
                }
            }
        });
    }
}

/// A bound-but-not-yet-serving server. [`NetServer::spawn`] starts the
/// accept loop; see the crate docs for a full serve/connect example.
pub struct NetServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl NetServer {
    /// Binds a listener and wraps `service` for network access. Use port 0
    /// to let the OS pick (read it back via [`NetServer::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: MatchService,
        opts: ServerOptions,
    ) -> io::Result<NetServer> {
        assert!(opts.subscriber_queue >= 1, "subscriber_queue must be >= 1");
        let listener = TcpListener::bind(addr)?;
        Ok(NetServer {
            listener,
            shared: Arc::new(Shared {
                svc: Mutex::new(service),
                subs: Mutex::new(Vec::new()),
                opts,
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop on a background thread and returns the
    /// control handle.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let shared = self.shared;
        let listener = self.listener;
        let join = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let shared = Arc::clone(&shared);
                thread::spawn(move || {
                    metrics::net().connections.inc();
                    // Connection errors are the peer's problem; the service
                    // behind the lock is untouched by a failed connection.
                    let _ = serve_connection(&shared, stream);
                });
            }
        });
        Ok(ServerHandle {
            addr,
            stop,
            join: Some(join),
        })
    }
}

/// Control handle for a spawned server: address + shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting new connections and joins the accept loop.
    /// Established connections run until their client disconnects.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Reads one request, mapping frame-level failures to the error response
/// the server should send before closing.
fn read_request(stream: &mut TcpStream) -> Result<Option<Request>, (ErrorCode, String)> {
    match read_message::<_, Request>(stream) {
        Ok(ReadOutcome::Msg(req, n)) => {
            metrics::net().bytes_in.add(n as u64);
            Ok(Some(req))
        }
        Ok(ReadOutcome::Eof) => Ok(None),
        Err(NetError::Frame(m)) | Err(NetError::Codec(m)) => {
            metrics::net().bad_frames.inc();
            Err((ErrorCode::BadFrame, m))
        }
        Err(e) => Err((ErrorCode::Internal, e.to_string())),
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> Result<(), NetError> {
    let n = write_message(stream, resp)?;
    metrics::net().bytes_out.add(n as u64);
    Ok(())
}

/// Runs one connection to completion: handshake, lockstep requests, and —
/// if the client subscribes — the one-way stream tail.
fn serve_connection(shared: &Shared, mut stream: TcpStream) -> Result<(), NetError> {
    let obs = metrics::net();

    // Handshake: the first frame must be a version-matching Hello.
    match read_request(&mut stream) {
        Ok(Some(Request::Hello { version })) if version == PROTOCOL_VERSION => {
            let svc = shared.svc.lock();
            let ack = Response::HelloAck {
                version: PROTOCOL_VERSION,
                backend: svc.oracle().name().to_string(),
                epoch: svc.epoch(),
            };
            drop(svc);
            send(&mut stream, &ack)?;
        }
        Ok(Some(Request::Hello { version })) => {
            let _ = send(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "server speaks version {PROTOCOL_VERSION}, client sent {version}"
                    ),
                },
            );
            return Ok(());
        }
        Ok(Some(other)) => {
            let _ = send(
                &mut stream,
                &Response::Error {
                    code: ErrorCode::BadHandshake,
                    message: format!("first message must be Hello, got {other:?}"),
                },
            );
            return Ok(());
        }
        Ok(None) => return Ok(()), // connected and left; fine
        Err((code, message)) => {
            let _ = send(&mut stream, &Response::Error { code, message });
            return Ok(());
        }
    }

    // Lockstep request/response until EOF, a fatal frame error, or a
    // subscribe (which converts the connection into a stream).
    loop {
        let req = match read_request(&mut stream) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err((code, message)) => {
                let _ = send(&mut stream, &Response::Error { code, message });
                return Ok(());
            }
        };
        obs.requests.inc();
        let _span = obs.request_ns.span();

        let resp = match req {
            Request::Hello { .. } => Response::Error {
                code: ErrorCode::BadRequest,
                message: "connection is already past its handshake".to_string(),
            },
            Request::Ping => Response::Pong,
            Request::Register { pattern } => {
                let mut svc = shared.svc.lock();
                let id = svc.register(pattern);
                shared.pump();
                Response::Registered { query: id.value() }
            }
            Request::Deregister { query } => {
                let mut svc = shared.svc.lock();
                let known = svc.deregister(QueryId::from_raw(query));
                shared.pump(); // closes that query's wire streams
                Response::Done { known }
            }
            Request::Suspend { query } => {
                let mut svc = shared.svc.lock();
                let known = svc.suspend(QueryId::from_raw(query));
                shared.pump();
                Response::Done { known }
            }
            Request::Resume { query } => {
                let mut svc = shared.svc.lock();
                let known = svc.resume(QueryId::from_raw(query));
                shared.pump();
                Response::Done { known }
            }
            Request::ApplyBatch { updates } => {
                let mut svc = shared.svc.lock();
                let out = svc.apply(&updates);
                shared.pump();
                Response::Applied {
                    epoch: out.epoch,
                    applied: out.applied as u64,
                    aff1: out.aff1 as u64,
                    deltas: out.deltas,
                }
            }
            Request::Result { query } => {
                let mut svc = shared.svc.lock();
                let relation = svc.result(QueryId::from_raw(query));
                shared.pump(); // lazy reactivation may emit catch-up deltas
                Response::ResultRelation { relation }
            }
            Request::Subscribe { query } => {
                let mut svc = shared.svc.lock();
                match svc.subscribe(QueryId::from_raw(query)) {
                    None => Response::Error {
                        code: ErrorCode::UnknownQuery,
                        message: format!("no registered query with id {query}"),
                    },
                    Some(sub) => {
                        obs.subscriptions.inc();
                        let (tx, rx) = sync_channel(shared.opts.subscriber_queue);
                        let end = Arc::new(Mutex::new(None));
                        shared.subs.lock().push(NetSub {
                            sub,
                            tx,
                            end: Arc::clone(&end),
                        });
                        // Forward the snapshot (and anything else buffered)
                        // before the lock drops, so the Subscribed reply is
                        // immediately followed by the snapshot delta.
                        shared.pump();
                        drop(svc);
                        send(&mut stream, &Response::Subscribed { query })?;
                        return stream_subscriber(stream, rx, end);
                    }
                }
            }
        };
        send(&mut stream, &resp)?;
    }
}

/// The one-way tail of a subscribed connection: moves queued deltas onto
/// the socket, then writes the explicit end-of-stream marker.
fn stream_subscriber(
    mut stream: TcpStream,
    rx: Receiver<MatchDelta>,
    end: Arc<Mutex<Option<EndReason>>>,
) -> Result<(), NetError> {
    let obs = metrics::net();
    loop {
        match rx.recv() {
            Ok(delta) => {
                let n = write_message(&mut stream, &StreamMsg::Delta(delta))?;
                obs.bytes_out.add(n as u64);
            }
            Err(_) => {
                // The pump dropped our sender: every queued delta has been
                // written, and the slot says why the stream ended.
                let reason = end.lock().take().unwrap_or(EndReason::QueryClosed);
                let _ = write_message(&mut stream, &StreamMsg::End { reason });
                return Ok(());
            }
        }
    }
}
