//! Cross-crate consistency of incremental matching: after any stream of
//! updates, the incrementally maintained match equals a from-scratch run of
//! `Match` on the updated graph (and the maintained distance oracle answers
//! exactly like a freshly built matrix).
//!
//! These tests run on whichever backend `GPM_ORACLE` selects, so the CI
//! two-hop leg re-proves them against the label-based oracle.

use gpm::{
    bounded_simulation_with_oracle, generate_pattern, random_updates, Dataset, DistanceMatrix,
    EdgeUpdate, IncrementalMatcher, NodeId, PatternGenConfig, UpdateStreamConfig,
};

fn dag_pattern(graph: &gpm::DataGraph, seed: u64) -> gpm::PatternGraph {
    for attempt in 0..32 {
        let cfg = PatternGenConfig::new(4, 4, 3).with_seed(seed + attempt * 101);
        let (p, _) = generate_pattern(graph, &cfg);
        if p.is_dag() {
            return p;
        }
    }
    panic!("could not generate a DAG pattern");
}

/// The maintained oracle answers every pair exactly like a matrix rebuilt
/// from scratch on the updated graph.
fn assert_oracle_matches_rebuild(matcher: &IncrementalMatcher, ctx: &str) {
    let rebuilt = DistanceMatrix::build(matcher.graph());
    let n = matcher.graph().node_count() as u32;
    for x in (0..n).map(NodeId::new) {
        for y in (0..n).map(NodeId::new) {
            assert_eq!(
                matcher.oracle().nonempty_distance(matcher.graph(), x, y),
                rebuilt.nonempty_distance(x, y),
                "{ctx}: oracle diverged at ({x:?}, {y:?})"
            );
        }
    }
}

#[test]
fn incremental_matcher_tracks_batch_recompute_on_youtube() {
    let graph = Dataset::YouTube.generate(0.015, 11);
    let pattern = dag_pattern(&graph, 1);
    let mut matcher = IncrementalMatcher::new(pattern.clone(), graph.clone());

    for round in 0..4u64 {
        let updates = random_updates(
            matcher.graph(),
            &UpdateStreamConfig::mixed(40).with_seed(round + 100),
        );
        matcher.apply_batch(&updates).unwrap();

        // Maintained oracle equals a rebuilt matrix.
        assert_oracle_matches_rebuild(&matcher, &format!("round {round}"));

        // Maintained match equals recomputation.
        let rebuilt = DistanceMatrix::build(matcher.graph());
        let recomputed = bounded_simulation_with_oracle(&pattern, matcher.graph(), &rebuilt);
        assert_eq!(
            matcher.relation(),
            recomputed.relation,
            "match diverged at round {round}"
        );
    }
    assert_eq!(matcher.recompute_fallbacks(), 0);
}

#[test]
fn unit_updates_match_batch_updates() {
    // Applying a stream one update at a time gives the same final state as
    // applying it as one batch.
    let graph = Dataset::PBlog.generate(0.03, 5);
    let pattern = dag_pattern(&graph, 2);
    let updates = random_updates(&graph, &UpdateStreamConfig::mixed(30).with_seed(9));

    let mut unit = IncrementalMatcher::new(pattern.clone(), graph.clone());
    for u in &updates {
        unit.apply(*u).unwrap();
    }

    let mut batch = IncrementalMatcher::new(pattern, graph);
    batch.apply_batch(&updates).unwrap();

    assert_eq!(unit.relation(), batch.relation());
    assert_eq!(unit.graph().edge_count(), batch.graph().edge_count());
    let n = unit.graph().node_count() as u32;
    for x in (0..n).map(NodeId::new) {
        for y in (0..n).map(NodeId::new) {
            assert_eq!(
                unit.oracle().nonempty_distance(unit.graph(), x, y),
                batch.oracle().nonempty_distance(batch.graph(), x, y),
                "unit/batch oracles diverged at ({x:?}, {y:?})"
            );
        }
    }
}

#[test]
fn deletions_then_reinsertions_restore_the_match() {
    let graph = Dataset::Matter.generate(0.01, 21);
    let pattern = dag_pattern(&graph, 3);
    let mut matcher = IncrementalMatcher::new(pattern, graph.clone());
    let initial = matcher.relation();

    // Delete a handful of edges, then re-insert them in reverse order.
    let victims: Vec<(gpm::NodeId, gpm::NodeId)> = graph.edges().take(12).collect();
    for &(a, b) in &victims {
        matcher.apply(EdgeUpdate::Delete(a, b)).unwrap();
    }
    for &(a, b) in victims.iter().rev() {
        matcher.apply(EdgeUpdate::Insert(a, b)).unwrap();
    }
    assert_eq!(
        matcher.relation(),
        initial,
        "round trip should restore the match"
    );
    assert_oracle_matches_rebuild(&matcher, "after round trip");
}
