//! Blocking client for the wire protocol.
//!
//! [`NetClient`] speaks the lockstep request/response phase;
//! [`NetClient::subscribe`] consumes it and returns a
//! [`NetSubscription`], mirroring the protocol's own one-way conversion —
//! the type system forbids sending requests down a streaming connection.

use crate::codec::{read_message, write_message, ReadOutcome};
use crate::error::NetError;
use crate::proto::{EndReason, Request, Response, StreamMsg, PROTOCOL_VERSION};
use gpm_core::MatchRelation;
use gpm_distance::EdgeUpdate;
use gpm_graph::PatternGraph;
use gpm_service::MatchDelta;
use std::net::{TcpStream, ToSocketAddrs};

/// What [`NetClient::apply`] returns: the wire copy of
/// [`gpm_service::BatchOutcome`].
#[derive(Clone, Debug, PartialEq)]
pub struct AppliedBatch {
    /// The epoch the batch was assigned.
    pub epoch: u64,
    /// Updates that took effect (no-ops excluded).
    pub applied: u64,
    /// `|AFF1|` of the shared distance maintenance.
    pub aff1: u64,
    /// Every non-empty per-query delta, in registration order.
    pub deltas: Vec<MatchDelta>,
}

/// A connected, handshaken client in the request/response phase.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    backend: String,
    epoch_at_connect: u64,
}

impl NetClient {
    /// Connects and performs the `Hello`/`HelloAck` handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<NetClient, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        write_message(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        match read_response(&mut stream)? {
            Response::HelloAck {
                version,
                backend,
                epoch,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(NetError::Protocol(format!(
                        "server acknowledged version {version}, expected {PROTOCOL_VERSION}"
                    )));
                }
                Ok(NetClient {
                    stream,
                    backend,
                    epoch_at_connect: epoch,
                })
            }
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// The server's distance-oracle backend name (diagnostic).
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// The service epoch observed during the handshake.
    pub fn epoch_at_connect(&self) -> u64 {
        self.epoch_at_connect
    }

    fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        write_message(&mut self.stream, req)?;
        read_response(&mut self.stream)
    }

    /// Registers a standing query; returns its raw id.
    pub fn register(&mut self, pattern: &PatternGraph) -> Result<u64, NetError> {
        match self.call(&Request::Register {
            pattern: pattern.clone(),
        })? {
            Response::Registered { query } => Ok(query),
            other => Err(unexpected("Registered", &other)),
        }
    }

    /// Deregisters a query; `false` if the id was unknown.
    pub fn deregister(&mut self, query: u64) -> Result<bool, NetError> {
        match self.call(&Request::Deregister { query })? {
            Response::Done { known } => Ok(known),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Suspends a query; `false` if the id was unknown.
    pub fn suspend(&mut self, query: u64) -> Result<bool, NetError> {
        match self.call(&Request::Suspend { query })? {
            Response::Done { known } => Ok(known),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Resumes a suspended query; `false` if the id was unknown.
    pub fn resume(&mut self, query: u64) -> Result<bool, NetError> {
        match self.call(&Request::Resume { query })? {
            Response::Done { known } => Ok(known),
            other => Err(unexpected("Done", &other)),
        }
    }

    /// Applies one atomic update batch and returns its outcome.
    pub fn apply(&mut self, updates: &[EdgeUpdate]) -> Result<AppliedBatch, NetError> {
        match self.call(&Request::ApplyBatch {
            updates: updates.to_vec(),
        })? {
            Response::Applied {
                epoch,
                applied,
                aff1,
                deltas,
            } => Ok(AppliedBatch {
                epoch,
                applied,
                aff1,
                deltas,
            }),
            other => Err(unexpected("Applied", &other)),
        }
    }

    /// Fetches a query's current visible relation (`None` for unknown or
    /// suspended queries).
    pub fn result(&mut self, query: u64) -> Result<Option<MatchRelation>, NetError> {
        match self.call(&Request::Result { query })? {
            Response::ResultRelation { relation } => Ok(relation),
            other => Err(unexpected("ResultRelation", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Converts this connection into a one-way delta stream for `query`.
    /// The first delta is a snapshot of the result at subscribe time.
    pub fn subscribe(mut self, query: u64) -> Result<NetSubscription, NetError> {
        match self.call(&Request::Subscribe { query })? {
            Response::Subscribed { query: echoed } if echoed == query => Ok(NetSubscription {
                stream: self.stream,
                query,
                end: None,
            }),
            Response::Subscribed { query: echoed } => Err(NetError::Protocol(format!(
                "subscribed to {query} but server echoed {echoed}"
            ))),
            other => Err(unexpected("Subscribed", &other)),
        }
    }
}

/// The receiving end of a wire subscription.
#[derive(Debug)]
pub struct NetSubscription {
    stream: TcpStream,
    query: u64,
    end: Option<EndReason>,
}

impl NetSubscription {
    /// The raw id of the subscribed query.
    pub fn query(&self) -> u64 {
        self.query
    }

    /// Why the stream ended, once [`NetSubscription::next`] has returned
    /// `Ok(None)`.
    pub fn end_reason(&self) -> Option<EndReason> {
        self.end
    }

    /// Blocks for the next delta. `Ok(None)` means the server ended the
    /// stream explicitly ([`NetSubscription::end_reason`] says why); a
    /// connection that dies *without* an end marker is an error, never a
    /// silent end.
    // Not an Iterator: the item shape is Result<Option<_>>, so errors end
    // the loop instead of repeating forever on a dead socket.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<MatchDelta>, NetError> {
        if self.end.is_some() {
            return Ok(None);
        }
        match read_message::<_, StreamMsg>(&mut self.stream)? {
            ReadOutcome::Msg(StreamMsg::Delta(delta), _) => Ok(Some(delta)),
            ReadOutcome::Msg(StreamMsg::End { reason }, _) => {
                self.end = Some(reason);
                Ok(None)
            }
            ReadOutcome::Eof => Err(NetError::Protocol(
                "stream closed without an End marker".to_string(),
            )),
        }
    }

    /// Collects deltas until the stream ends; fails on a close without an
    /// end marker, like [`NetSubscription::next`].
    pub fn collect_to_end(&mut self) -> Result<Vec<MatchDelta>, NetError> {
        let mut out = Vec::new();
        while let Some(d) = self.next()? {
            out.push(d);
        }
        Ok(out)
    }
}

fn read_response(stream: &mut TcpStream) -> Result<Response, NetError> {
    match read_message::<_, Response>(stream)? {
        ReadOutcome::Msg(Response::Error { code, message }, _) => {
            Err(NetError::Remote { code, message })
        }
        ReadOutcome::Msg(resp, _) => Ok(resp),
        ReadOutcome::Eof => Err(NetError::Protocol(
            "server closed the connection instead of responding".to_string(),
        )),
    }
}

fn unexpected(wanted: &str, got: &Response) -> NetError {
    NetError::Protocol(format!("expected {wanted}, got {got:?}"))
}
