//! Vendored `#[derive(Serialize, Deserialize)]` macros for the minimal serde
//! stand-in, written against `proc_macro` alone (no `syn`/`quote`, since the
//! build environment cannot download crates).
//!
//! The input grammar intentionally covers what this workspace defines:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple or struct-like. Generic types and `#[serde(...)]` attributes
//! are rejected with a compile error rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by generating a `to_value` tree builder.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives `serde::Deserialize` by generating a `from_value` reconstructor.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Copy, Clone, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

/// The shapes of types we can derive for.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let source = match parse(input).map(|(name, shape)| generate(&name, &shape, which)) {
        Ok(code) => code,
        Err(message) => format!("compile_error!({message:?});"),
    };
    source
        .parse()
        .expect("serde_derive generated invalid Rust; this is a bug in the vendored macro")
}

/// Parses a struct/enum item into its name and [`Shape`].
fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Shape::TupleStruct(count_tuple_fields(g.stream()))))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Shape::UnitStruct)),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Shape::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` qualifiers.
fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Skips a type expression up to a top-level `,` (tracking `<...>` nesting,
/// since angle brackets are bare puncts in token streams).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        i += 1; // the ',', if any
        fields.push(name);
    }
    Ok(fields)
}

/// Counts fields of a tuple struct/variant by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        i += 1; // the ',', if any
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Discriminants (`= expr`) and the separating comma.
        while let Some(tok) = tokens.get(i) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, which: Trait) -> String {
    match which {
        Trait::Serialize => generate_serialize(name, shape),
        Trait::Deserialize => generate_deserialize(name, shape),
    }
}

fn generate_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::unit_variant({vname:?}),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::newtype_variant({vname:?}, ::serde::Serialize::to_value(__f0)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::tuple_variant({vname:?}, ::std::vec![{}]),",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binders = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::struct_variant({vname:?}, ::std::vec![{}]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn generate_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __v.tuple({n})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "({vname:?}, _) => ::std::result::Result::Ok({name}::{vname}),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "({vname:?}, ::std::option::Option::Some(__payload)) => \
                             ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                })
                                .collect();
                            format!(
                                "({vname:?}, ::std::option::Option::Some(__payload)) => {{\n\
                                     let __items = __payload.tuple({n})?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(__payload.field({f:?})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "({vname:?}, ::std::option::Option::Some(__payload)) => \
                                 ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__variant, __payload) = __v.as_variant().ok_or_else(|| \
                     ::serde::Error::custom(::std::format!(\
                         \"expected a variant of {name}\")))?;\n\
                 match (__variant, __payload) {{\n\
                     {}\n\
                     (__other, _) => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
