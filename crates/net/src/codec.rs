//! Stream codec: the WAL's integrity envelope, applied to sockets.
//!
//! A wire message is exactly one [`gpm_service::wal`] frame —
//! `len:u32le ++ crc:u32le ++ payload` with the CRC covering the length
//! bytes and the payload — whose payload is the compact JSON of one
//! [`crate::proto`] message. Reusing [`gpm_service::wal::encode_frame`] /
//! [`gpm_service::wal::decode_frame_exact`] means the network boundary
//! inherits the durability layer's guarantee verbatim: any single-byte
//! corruption anywhere in a frame, including the length field, is detected
//! (the shared corruption proptests cover both consumers).
//!
//! One check is new at the network boundary: the WAL trusts its writer, a
//! socket does not. [`MAX_FRAME_LEN`] caps the length field **before** any
//! allocation, so a hostile 4 GiB length prefix costs the server an 8-byte
//! read, not an out-of-memory.

use crate::error::NetError;
use gpm_service::wal::{decode_frame_exact, encode_frame, FRAME_HEADER_LEN};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Upper bound on a frame's payload length (16 MiB). Large enough for a
/// snapshot delta of millions of pairs, small enough that a garbled or
/// hostile length field can never trigger a pathological allocation.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// What one blocking read of a message stream produced.
#[derive(Debug)]
pub enum ReadOutcome<T> {
    /// One complete, checksum-valid message (and its size on the wire).
    Msg(T, usize),
    /// The peer closed the connection cleanly between frames.
    Eof,
}

/// Encodes one message as a single frame and returns the bytes.
pub fn encode_message<T: Serialize>(msg: &T) -> Result<Vec<u8>, NetError> {
    let payload = serde_json::to_string(msg)?;
    if payload.len() > MAX_FRAME_LEN as usize {
        return Err(NetError::Codec(format!(
            "message of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
            payload.len()
        )));
    }
    Ok(encode_frame(payload.as_bytes())?)
}

/// Strict inverse of [`encode_message`]: the slice must hold exactly one
/// valid frame whose payload decodes as `T`.
pub fn decode_message<T: Deserialize>(frame: &[u8]) -> Result<T, NetError> {
    if frame.len() >= FRAME_HEADER_LEN {
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return Err(NetError::Frame(format!(
                "length field {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
            )));
        }
    }
    let payload = decode_frame_exact(frame)?;
    let text = std::str::from_utf8(payload)
        .map_err(|e| NetError::Codec(format!("checksum-valid payload is not UTF-8: {e}")))?;
    Ok(serde_json::from_str(text)?)
}

/// Writes one message as one frame and flushes.
pub fn write_message<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<usize, NetError> {
    let frame = encode_message(msg)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Reads bytes until `buf` is full or the reader hits EOF; returns how many
/// bytes arrived (retrying on `Interrupted`, like `read_exact`).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads exactly one framed message from a blocking stream.
///
/// * a clean close **between** frames is [`ReadOutcome::Eof`];
/// * a close **inside** a frame (torn header or payload) is a
///   [`NetError::Frame`] — the reader can never mistake a truncated frame
///   for a complete one;
/// * a length field above [`MAX_FRAME_LEN`] is rejected before any payload
///   allocation;
/// * CRC and decode failures surface as [`NetError::Frame`] /
///   [`NetError::Codec`] exactly as [`decode_message`] classifies them.
pub fn read_message<R: Read, T: Deserialize>(r: &mut R) -> Result<ReadOutcome<T>, NetError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let got = read_full(r, &mut header)?;
    if got == 0 {
        return Ok(ReadOutcome::Eof);
    }
    if got < header.len() {
        return Err(NetError::Frame(format!(
            "connection closed inside a frame header ({got} of {FRAME_HEADER_LEN} bytes)"
        )));
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(NetError::Frame(format!(
            "length field {len} exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})"
        )));
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + len as usize);
    frame.extend_from_slice(&header);
    frame.resize(FRAME_HEADER_LEN + len as usize, 0);
    let got = read_full(r, &mut frame[FRAME_HEADER_LEN..])?;
    if got < len as usize {
        return Err(NetError::Frame(format!(
            "connection closed inside a frame payload ({got} of {len} bytes)"
        )));
    }
    let msg = decode_message(&frame)?;
    Ok(ReadOutcome::Msg(msg, frame.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Request, PROTOCOL_VERSION};
    use std::io::Cursor;

    fn hello() -> Request {
        Request::Hello {
            version: PROTOCOL_VERSION,
        }
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        let n = write_message(&mut buf, &hello()).unwrap();
        assert_eq!(n, buf.len());
        let mut cur = Cursor::new(&buf);
        match read_message::<_, Request>(&mut cur).unwrap() {
            ReadOutcome::Msg(msg, size) => {
                assert_eq!(msg, hello());
                assert_eq!(size, buf.len());
            }
            ReadOutcome::Eof => panic!("expected a message"),
        }
        // The stream is now cleanly exhausted.
        assert!(matches!(
            read_message::<_, Request>(&mut cur).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn truncation_at_every_byte_is_a_frame_error_not_eof() {
        let mut buf = Vec::new();
        write_message(&mut buf, &hello()).unwrap();
        for cut in 1..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            let err = read_message::<_, Request>(&mut cur).unwrap_err();
            assert!(
                matches!(err, NetError::Frame(_)),
                "cut at {cut}: expected Frame error, got {err}"
            );
        }
    }

    #[test]
    fn oversized_length_field_is_rejected_without_allocation() {
        let mut buf = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 4]); // bogus CRC
        let mut cur = Cursor::new(&buf);
        let err = read_message::<_, Request>(&mut cur).unwrap_err();
        assert!(matches!(err, NetError::Frame(m) if m.contains("MAX_FRAME_LEN")));
        // The strict decoder agrees.
        assert!(decode_message::<Request>(&buf).is_err());
    }

    #[test]
    fn oversized_message_refuses_to_encode() {
        let big = "x".repeat(MAX_FRAME_LEN as usize + 1);
        assert!(matches!(
            encode_message(&big).unwrap_err(),
            NetError::Codec(_)
        ));
    }
}
