//! Node attribute tuples.
//!
//! For each data-graph node `u`, `f_A(u)` is a tuple
//! `(A_1 = a_1, ..., A_n = a_n)` (Section 2.1). The number of attributes per
//! node is small in every workload of the paper (a handful of fields such as
//! `category`, `rate`, `age`), so attributes are stored as a sorted
//! `Vec<(String, AttrValue)>` — cheaper to build and iterate than a hash map
//! at these sizes, and deterministic to serialize.

use crate::value::AttrValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The attribute tuple `f_A(v)` of a data-graph node.
///
/// Keys are unique; inserting an existing key overwrites its value.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Attributes {
    /// Sorted by key to keep lookups `O(log n)` and serialization canonical.
    entries: Vec<(String, AttrValue)>,
}

impl Attributes {
    /// An empty attribute tuple.
    pub fn new() -> Self {
        Attributes {
            entries: Vec::new(),
        }
    }

    /// Builds an attribute tuple holding a single `label` attribute.
    ///
    /// Traditional graph patterns (and plain graph simulation) use the node
    /// label as the only attribute; this constructor covers that case.
    pub fn labeled(label: impl Into<AttrValue>) -> Self {
        let mut a = Attributes::new();
        a.set("label", label);
        a
    }

    /// Number of attributes in the tuple.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tuple carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets attribute `key` to `value`, overwriting any previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> &mut Self {
        let key = key.into();
        let value = value.into();
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(i) => self.entries[i].1 = value,
            Err(i) => self.entries.insert(i, (key, value)),
        }
        self
    }

    /// Chainable variant of [`Attributes::set`] for builder-style construction.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Returns the value of attribute `key`, if defined.
    pub fn get(&self, key: &str) -> Option<&AttrValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Whether attribute `key` is defined on this node.
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Removes attribute `key`, returning its previous value if present.
    pub fn remove(&mut self, key: &str) -> Option<AttrValue> {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates over attribute keys in key order.
    ///
    /// Used by the dataset writer to infer a column schema across nodes.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Convenience: the `label` attribute as a string, if present.
    pub fn label(&self) -> Option<&str> {
        self.get("label").and_then(AttrValue::as_str)
    }
}

impl<K: Into<String>, V: Into<AttrValue>, const N: usize> From<[(K, V); N]> for Attributes {
    fn from(items: [(K, V); N]) -> Self {
        let mut a = Attributes::new();
        for (k, v) in items {
            a.set(k, v);
        }
        a
    }
}

impl<K: Into<String>, V: Into<AttrValue>> FromIterator<(K, V)> for Attributes {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut a = Attributes::new();
        for (k, v) in iter {
            a.set(k, v);
        }
        a
    }
}

impl fmt::Display for Attributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_overwrite() {
        let mut a = Attributes::new();
        assert!(a.is_empty());
        a.set("category", "Music");
        a.set("rate", 4.5);
        a.set("category", "Comedy");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("category"), Some(&AttrValue::from("Comedy")));
        assert_eq!(a.get("rate"), Some(&AttrValue::Float(4.5)));
        assert_eq!(a.get("missing"), None);
        assert!(a.contains("rate"));
        assert!(!a.contains("missing"));
    }

    #[test]
    fn labeled_constructor() {
        let a = Attributes::labeled("AM");
        assert_eq!(a.label(), Some("AM"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn from_array_and_iterator() {
        let a = Attributes::from([("x", 1), ("y", 2)]);
        assert_eq!(a.get("x"), Some(&AttrValue::Int(1)));
        let b: Attributes = vec![("a", 1i64), ("b", 2i64)].into_iter().collect();
        assert_eq!(b.get("b"), Some(&AttrValue::Int(2)));
    }

    #[test]
    fn remove_attribute() {
        let mut a = Attributes::from([("x", 1), ("y", 2)]);
        assert_eq!(a.remove("x"), Some(AttrValue::Int(1)));
        assert_eq!(a.remove("x"), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn iteration_is_key_ordered() {
        let a = Attributes::from([("z", 1), ("a", 2), ("m", 3)]);
        let keys: Vec<&str> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
        assert_eq!(a.keys().collect::<Vec<_>>(), vec!["a", "m", "z"]);
    }

    #[test]
    fn display_is_readable() {
        let a = Attributes::from([("rate", 4)]).with("cat", "Music");
        assert_eq!(a.to_string(), "(cat=\"Music\", rate=4)");
    }

    #[test]
    fn builder_style_with() {
        let a = Attributes::new().with("x", 1).with("y", true);
        assert_eq!(a.get("y"), Some(&AttrValue::Bool(true)));
    }
}
