//! Vendored, minimal JSON text layer over the serde stand-in's
//! [`serde::Value`] tree (offline stand-in for the `serde_json` crate).
//!
//! Supports [`to_string`] and [`from_str`] — the only entry points this
//! workspace uses. The emitted JSON matches real `serde_json` for the shapes
//! the derive macros produce: objects, arrays, strings with full escaping,
//! `i64` integers and shortest-round-trip `f64` floats. Non-finite floats
//! are rejected, as upstream does.

#![forbid(unsafe_code)]

use serde::Value;
use std::fmt;

/// JSON serialization/parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{:?}` prints the shortest representation that round-trips and
            // always includes a `.` or exponent, keeping floats floats.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`], rejecting trailing garbage.
fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {pos} of JSON input"
        )));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!(
            "expected `{}` at byte {} of JSON input",
            b as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of JSON input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string in JSON input")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let first = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: require the paired escape.
                            if bytes.get(*pos) != Some(&b'\\') || bytes.get(*pos + 1) != Some(&b'u')
                            {
                                return Err(Error::new("unpaired surrogate in JSON string"));
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&second) {
                                return Err(Error::new("invalid low surrogate in JSON string"));
                            }
                            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| Error::new("invalid surrogate pair"))?
                        } else {
                            char::from_u32(first)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?
                        };
                        out.push(c);
                        continue; // parse_hex4 already advanced past the digits
                    }
                    _ => return Err(Error::new(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // guaranteed to be valid UTF-8).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in JSON input"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, Error> {
    let digits = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| Error::new("truncated unicode escape"))?;
    let text =
        std::str::from_utf8(digits).map_err(|_| Error::new("invalid unicode escape digits"))?;
    let value =
        u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid unicode escape digits"))?;
    *pos += 4;
    Ok(value)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid number in JSON input"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid character at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let text = {
            let mut out = String::new();
            write_value(v, &mut out).unwrap();
            out
        };
        parse(&text).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(4.5),
            Value::Float(-0.25),
            Value::Float(1e300),
            Value::Str("hello".into()),
            Value::Str("esc \" \\ \n \t ünïcode 🦀".into()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        assert_eq!(roundtrip(&Value::Float(4.0)), Value::Float(4.0));
    }

    #[test]
    fn containers_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::Int(1), Value::Null])),
            ("b".into(), Value::Map(vec![])),
            ("c".into(), Value::Seq(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("{not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1 trailing").is_err());
        assert!(parse("{\"a\": }").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } ").unwrap(),
            Value::Map(vec![(
                "a".into(),
                Value::Seq(vec![Value::Int(1), Value::Int(2)])
            )])
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""🦀""#).unwrap(), Value::Str("🦀".into()));
        assert!(parse(r#""\ud83e""#).is_err());
    }

    #[test]
    fn non_finite_floats_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }
}
