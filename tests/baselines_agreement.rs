//! Relationships between bounded simulation, plain graph simulation and the
//! subgraph-isomorphism baselines, as stated in Section 2.2 of the paper.

use gpm::{
    bounded_simulation, graph_simulation, subgraph_isomorphism_ullmann, subgraph_isomorphism_vf2,
    Attributes, DataGraph, EdgeBound, IsoConfig, NodeId, PatternGraph, Predicate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_labelled_instance(seed: u64, unit_bounds: bool) -> (DataGraph, PatternGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let labels = ["A", "B", "C", "D"];
    let n = rng.gen_range(5..16usize);
    let mut g = DataGraph::new();
    for _ in 0..n {
        g.add_node(Attributes::labeled(labels[rng.gen_range(0..labels.len())]));
    }
    for _ in 0..rng.gen_range(4..n * 3) {
        let a = NodeId::new(rng.gen_range(0..n as u32));
        let b = NodeId::new(rng.gen_range(0..n as u32));
        let _ = g.try_add_edge(a, b);
    }
    let mut p = PatternGraph::new();
    let pn = rng.gen_range(2..5usize);
    for _ in 0..pn {
        p.add_node(Predicate::label(labels[rng.gen_range(0..labels.len())]));
    }
    for _ in 0..rng.gen_range(1..pn * 2) {
        let a = gpm::PatternNodeId::new(rng.gen_range(0..pn as u32));
        let b = gpm::PatternNodeId::new(rng.gen_range(0..pn as u32));
        if a == b {
            continue;
        }
        let bound = if unit_bounds {
            EdgeBound::ONE
        } else {
            EdgeBound::Hops(rng.gen_range(1..4))
        };
        let _ = p.add_edge(a, b, bound);
    }
    (g, p)
}

/// Remark (2) of Section 2.2: graph simulation is the special case of bounded
/// simulation with unit edge bounds.
#[test]
fn graph_simulation_is_the_unit_bound_special_case() {
    for seed in 0..40u64 {
        let (g, p) = random_labelled_instance(seed, true);
        let sim = graph_simulation(&p, &g);
        let bounded = bounded_simulation(&p, &g);
        assert_eq!(sim.relation, bounded.relation, "seed {seed}");
    }
}

/// If an isomorphic embedding exists (edge-to-edge, injective), then bounded
/// simulation with the same pattern also matches — and every embedded node is
/// in the maximum simulation relation.
#[test]
fn isomorphism_embeddings_are_contained_in_the_maximum_match() {
    let mut patterns_with_embeddings = 0;
    for seed in 0..60u64 {
        let (g, p) = random_labelled_instance(seed, true);
        let iso = subgraph_isomorphism_vf2(&p, &g, &IsoConfig::default());
        if !iso.is_match() {
            continue;
        }
        patterns_with_embeddings += 1;
        let bounded = bounded_simulation(&p, &g);
        assert!(
            bounded.relation.is_match(&p),
            "seed {seed}: isomorphism matched but bounded simulation did not"
        );
        for emb in &iso.embeddings {
            for u in p.node_ids() {
                assert!(
                    bounded.relation.contains(u, emb.image_of(u)),
                    "seed {seed}: embedded pair missing from the maximum match"
                );
            }
        }
    }
    assert!(
        patterns_with_embeddings > 5,
        "too few positive instances to be meaningful"
    );
}

/// Ullmann and VF2 enumerate identical embedding sets (they solve the same
/// problem), including on instances with bounded-simulation-only matches.
#[test]
fn ullmann_and_vf2_agree() {
    for seed in 100..140u64 {
        let (g, p) = random_labelled_instance(seed, true);
        let cfg = IsoConfig::default();
        let a = subgraph_isomorphism_ullmann(&p, &g, &cfg);
        let b = subgraph_isomorphism_vf2(&p, &g, &cfg);
        let mut ea: Vec<Vec<NodeId>> = a.embeddings.iter().map(|e| e.nodes.clone()).collect();
        let mut eb: Vec<Vec<NodeId>> = b.embeddings.iter().map(|e| e.nodes.clone()).collect();
        ea.sort();
        eb.sort();
        assert_eq!(ea, eb, "seed {seed}");
    }
}

/// Bounded simulation finds communities that subgraph isomorphism cannot see:
/// the drug-ring shape (Example 1.1) matches via simulation but has no
/// isomorphic embedding.
#[test]
fn bounded_simulation_strictly_more_permissive_on_the_motivating_example() {
    // One node plays both AM and S; supervision spans 2 hops.
    let mut g = DataGraph::new();
    let b = g.add_node(Attributes::labeled("B"));
    let am = g.add_node(Attributes::labeled("AM").with("secretary", true));
    let w1 = g.add_node(Attributes::labeled("FW"));
    let w2 = g.add_node(Attributes::labeled("FW"));
    g.add_edge(b, am).unwrap();
    g.add_edge(am, w1).unwrap();
    g.add_edge(w1, w2).unwrap();
    g.add_edge(w2, am).unwrap();

    let mut p = PatternGraph::new();
    let pb = p.add_node(Predicate::label("B"));
    let pam = p.add_node(Predicate::label("AM"));
    let ps = p.add_node(Predicate::label("AM").and("secretary", gpm::CmpOp::Eq, true));
    let pfw = p.add_node(Predicate::label("FW"));
    p.add_edge(pb, pam, EdgeBound::ONE).unwrap();
    p.add_edge(pb, ps, EdgeBound::ONE).unwrap();
    p.add_edge(pam, pfw, EdgeBound::Hops(3)).unwrap();
    p.add_edge(ps, pfw, EdgeBound::Hops(2)).unwrap();
    p.add_edge(pfw, pam, EdgeBound::Hops(3)).unwrap();

    let bounded = bounded_simulation(&p, &g);
    assert!(bounded.relation.is_match(&p));
    // AM and S both map to the same node — impossible for a bijection.
    assert_eq!(
        bounded.relation.matches_of(pam),
        bounded.relation.matches_of(ps)
    );

    let iso = subgraph_isomorphism_vf2(&p, &g, &IsoConfig::default());
    assert!(
        !iso.is_match(),
        "subgraph isomorphism should not find this community"
    );
}
