//! Minimal command-line argument handling shared by the experiment binaries.
//!
//! Only four flags are needed (`--scale`, `--seed`, `--patterns`,
//! `--threads`), so a tiny hand-rolled parser keeps the harness free of CLI
//! dependencies.

use gpm::Parallelism;

/// Common harness arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct HarnessArgs {
    /// Fraction of the paper's dataset sizes to generate.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Number of random patterns to average over.
    pub patterns: usize,
    /// Worker threads for the parallel runtime (`0` = process default:
    /// `GPM_THREADS` or all available cores). Lets the Fig. 6(f)–(h)
    /// experiments sweep 1→8 cores from the command line.
    pub threads: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 0.25,
            seed: 2010,
            patterns: 5,
            threads: 0,
        }
    }
}

impl HarnessArgs {
    /// Parses `--scale`, `--seed` and `--patterns` from an iterator of
    /// arguments (unknown arguments are reported with an error message).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let mut take_value = |name: &str| {
                iter.next()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--scale" => {
                    out.scale = take_value("--scale")?
                        .parse()
                        .map_err(|e| format!("invalid --scale: {e}"))?;
                }
                "--seed" => {
                    out.seed = take_value("--seed")?
                        .parse()
                        .map_err(|e| format!("invalid --seed: {e}"))?;
                }
                "--patterns" => {
                    out.patterns = take_value("--patterns")?
                        .parse()
                        .map_err(|e| format!("invalid --patterns: {e}"))?;
                }
                "--threads" => {
                    out.threads = take_value("--threads")?
                        .parse()
                        .map_err(|e| format!("invalid --threads: {e}"))?;
                }
                "--help" | "-h" => {
                    return Err(
                        "usage: <experiment> [--scale <f>] [--seed <n>] [--patterns <n>] \
                         [--threads <n>]"
                            .to_string(),
                    )
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        if out.scale <= 0.0 || !out.scale.is_finite() {
            return Err("--scale must be a positive number".to_string());
        }
        if out.patterns == 0 {
            return Err("--patterns must be at least 1".to_string());
        }
        Ok(out)
    }

    /// Parses the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Scales one of the paper's workload sizes.
    pub fn scaled(&self, paper_size: usize) -> usize {
        ((paper_size as f64 * self.scale).round() as usize).max(8)
    }

    /// The [`Parallelism`] policy selected by `--threads` (the process
    /// default when the flag is 0/absent).
    pub fn parallelism(&self) -> Parallelism {
        if self.threads == 0 {
            Parallelism::from_env()
        } else {
            Parallelism::new(self.threads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<HarnessArgs, String> {
        HarnessArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a, HarnessArgs::default());
        assert!(a.scale > 0.0);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--scale",
            "0.5",
            "--seed",
            "99",
            "--patterns",
            "20",
            "--threads",
            "4",
        ])
        .unwrap();
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 99);
        assert_eq!(a.patterns, 20);
        assert_eq!(a.threads, 4);
        assert_eq!(a.parallelism().threads(), 4);
    }

    #[test]
    fn threads_zero_means_process_default() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.threads, 0);
        assert!(a.parallelism().threads() >= 1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "abc"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--patterns", "0"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--help"]).is_err());
    }

    #[test]
    fn scaled_sizes() {
        let a = parse(&["--scale", "0.1"]).unwrap();
        assert_eq!(a.scaled(1000), 100);
        assert_eq!(a.scaled(10), 8, "clamped to a useful minimum");
    }
}
