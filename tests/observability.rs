//! Observability contract suite for `gpm::obs`:
//!
//! 1. **Overhead gate** — the same scripted service session produces
//!    byte-identical outcomes, delta streams, final results and stats with
//!    observability off and on. Metrics are a read-only tap: flipping
//!    `GPM_OBS` must never change what the engine computes.
//! 2. **Determinism** — the deterministic counters (everything
//!    `Registry::snapshot().det_counters()` reports: match, oracle,
//!    incremental and service scopes) are bit-identical at 1, 2 and 8
//!    worker threads. Timing histograms and the `exec` scope are
//!    scheduling-dependent by nature and excluded by construction.
//! 3. **JSONL sink** — every exported line parses as a JSON object and the
//!    registry snapshot round-trips through the vendored `serde_json`.
//!
//! The `gpm-obs` registry and enable-flag are process-global, so the tests
//! serialise on one mutex and leave observability disabled on exit.

use gpm::exec::Parallelism;
use gpm::{datagen::powerlaw_graph, datagen::PowerLawConfig};
use gpm::{
    generate_pattern, random_updates, BatchOutcome, DataGraph, MatchDelta, MatchService,
    PatternGenConfig, ServiceStats, UpdateStreamConfig,
};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// Serialises every test in this binary: the registry and the enabled flag
/// are process-global state.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn forced(threads: usize) -> Parallelism {
    Parallelism::new(threads).with_sequential_threshold(0)
}

fn labelled_graph(nodes: usize, edges: usize, labels: usize, seed: u64) -> DataGraph {
    let mut g = powerlaw_graph(&PowerLawConfig::new(nodes, edges).with_seed(seed));
    for v in 0..g.node_count() {
        let label = format!("a{}", v % labels);
        g.attributes_mut(gpm::NodeId::new(v as u32))
            .set("label", label);
    }
    g
}

/// The scripted session every test replays: register K queries, subscribe,
/// suspend/resume one mid-stream (covering the lazy activation path), apply
/// a mixed update stream, and return everything observable.
fn run_session(
    threads: usize,
    seed: u64,
) -> (
    Vec<BatchOutcome>,
    Vec<Vec<MatchDelta>>,
    Vec<gpm::MatchRelation>,
    ServiceStats,
) {
    let queries = 4usize;
    let batches = 5u64;
    let g = labelled_graph(45, 130, 4, seed);
    let mut svc = MatchService::with_parallelism(g, forced(threads));
    let ids: Vec<_> = (0..queries as u64)
        .map(|i| {
            let (p, _) = generate_pattern(
                svc.graph(),
                &PatternGenConfig::new(3, 3, 3).with_seed(seed * 13 + i),
            );
            svc.register(p)
        })
        .collect();
    let subs: Vec<_> = ids.iter().map(|&id| svc.subscribe(id).unwrap()).collect();

    let parked = ids[1];
    let mut outcomes = Vec::new();
    for round in 0..batches {
        if round == 1 {
            svc.suspend(parked);
        }
        if round == batches - 1 {
            svc.resume(parked);
        }
        let updates = random_updates(
            svc.graph(),
            &UpdateStreamConfig::mixed(12).with_seed(seed * 97 + round),
        );
        outcomes.push(svc.apply(&updates));
    }

    let streams: Vec<Vec<MatchDelta>> = subs.iter().map(|s| s.drain()).collect();
    let finals: Vec<gpm::MatchRelation> = ids.iter().map(|&id| svc.result(id).unwrap()).collect();
    (outcomes, streams, finals, svc.stats().clone())
}

/// Flipping observability on must not change a single byte of what the
/// service computes — same outcomes, same delta streams, same final
/// relations, same work counters.
#[test]
fn results_identical_with_obs_off_and_on() {
    let _guard = obs_lock();
    gpm::obs::set_enabled(false);
    let off = run_session(2, 4242);

    gpm::obs::set_enabled(true);
    gpm::obs::registry().reset();
    let on = run_session(2, 4242);
    gpm::obs::set_enabled(false);

    assert_eq!(off.0, on.0, "batch outcomes changed under observation");
    assert_eq!(off.1, on.1, "delta streams changed under observation");
    assert_eq!(off.2, on.2, "final results changed under observation");
    assert_eq!(off.3, on.3, "service stats changed under observation");
}

/// The deterministic counters are part of the determinism contract: the
/// same session at 1, 2 and 8 threads produces bit-identical values for
/// every counter `det_counters()` reports.
#[test]
fn det_counters_identical_across_thread_counts() {
    let _guard = obs_lock();
    let run = |threads: usize| -> BTreeMap<String, u64> {
        gpm::obs::set_enabled(true);
        gpm::obs::registry().reset();
        run_session(threads, 777);
        let counters = gpm::obs::registry().snapshot().det_counters();
        gpm::obs::set_enabled(false);
        counters
    };
    let baseline = run(1);
    assert!(
        baseline.keys().any(|k| k.starts_with("match.")),
        "session should populate the match scope"
    );
    assert!(
        baseline.keys().any(|k| k.starts_with("service.")),
        "session should populate the service scope"
    );
    for threads in [2usize, 8] {
        let counters = run(threads);
        assert_eq!(
            baseline, counters,
            "deterministic counters diverged at {threads} threads"
        );
    }
}

/// Every line of the JSONL sink parses as a JSON object, the final registry
/// snapshot is among them, and each line round-trips through the vendored
/// `serde_json` unchanged in meaning.
#[test]
fn jsonl_export_parses_and_round_trips() {
    let _guard = obs_lock();
    let path = std::env::temp_dir().join(format!("gpm-obs-test-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    gpm::obs::set_enabled(true);
    gpm::obs::registry().reset();
    assert!(gpm::obs::set_out_path(&path), "sink must open");
    run_session(2, 99);
    gpm::obs::emit_event(
        "test",
        "marker",
        &[("answer", 42)],
        &[("note", "esc \"quotes\" and \\slashes\\")],
    );
    assert!(
        gpm::obs::registry().export_snapshot(),
        "snapshot export must reach the sink"
    );
    gpm::obs::set_enabled(false);

    let text = std::fs::read_to_string(&path).expect("sink file readable");
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "sink should contain at least one line");

    let mut types = Vec::new();
    for line in &lines {
        let value: serde::Value = serde_json::from_str(line).expect("line parses");
        let serde::Value::Map(ref entries) = value else {
            panic!("line is not a JSON object: {line}");
        };
        let ty = entries
            .iter()
            .find(|(k, _)| k == "type")
            .map(|(_, v)| v.clone())
            .expect("line has a type field");
        types.push(ty);

        // Round-trip: render the parsed tree back to text and re-parse.
        let rendered = serde_json::to_string(&value).expect("re-serializes");
        let reparsed: serde::Value = serde_json::from_str(&rendered).expect("round-trips");
        assert_eq!(value, reparsed, "JSONL line changed across a round-trip");
    }
    assert!(
        types.contains(&serde::Value::Str("event".into())),
        "the explicit marker event should be present"
    );
    assert!(
        types.contains(&serde::Value::Str("snapshot".into())),
        "the final registry snapshot should be present"
    );

    // The snapshot line carries the full scope tree, including the session's
    // deterministic counters.
    let snapshot_line = lines
        .iter()
        .find(|l| l.contains("\"type\":\"snapshot\""))
        .expect("snapshot line");
    let snapshot: serde::Value = serde_json::from_str(snapshot_line).expect("snapshot parses");
    let scopes = snapshot.field("scopes").expect("snapshot has scopes");
    assert!(
        matches!(scopes.field("service"), Ok(serde::Value::Map(_))),
        "snapshot should include the service scope"
    );

    let _ = std::fs::remove_file(&path);
}
