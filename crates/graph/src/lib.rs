//! # gpm-graph
//!
//! Attributed data graphs and pattern graphs — the substrate of the
//! bounded-simulation graph pattern matching system of Fan et al.
//! (*Graph Pattern Matching: From Intractable to Polynomial Time*, VLDB 2010).
//!
//! The paper works with two kinds of graphs:
//!
//! * a **data graph** `G = (V, E, f_A)`: a finite directed graph whose nodes
//!   carry an attribute tuple (`f_A(v)`), see [`DataGraph`];
//! * a **pattern graph** `P = (V_p, E_p, f_v, f_e)`: a directed graph whose
//!   nodes carry a *predicate* (a conjunction of comparisons over attributes,
//!   [`Predicate`]) and whose edges carry a hop bound — a positive integer
//!   `k` or `*` for "unbounded" ([`EdgeBound`]) — see [`PatternGraph`].
//!
//! This crate deliberately contains no matching logic: it provides the graph
//! model, attribute values and predicates, generic traversals, construction
//! builders and (de)serialization. Matching lives in `gpm-core`,
//! `gpm-incremental` and `gpm-iso`; distance oracles live in `gpm-distance`.
//!
//! ## Physical layout
//!
//! [`DataGraph`] stores each adjacency direction in **compressed-sparse-row**
//! form — an offsets array plus one flat neighbour array — with a per-node
//! **delta overlay** absorbing edge insertions/deletions in `O(deg)` per
//! update. [`DataGraph::out_neighbors`]/[`DataGraph::in_neighbors`] always
//! return one contiguous slice, so the BFS loops of the distance oracles and
//! the matcher's candidate refinement scan linear memory.
//! [`DataGraph::compact`] folds the overlay back into the CSR base; bulk
//! constructors (builders, IO loaders, the `gpm-datagen` generators) do so
//! automatically.
//!
//! ## Quick tour
//!
//! ```
//! use gpm_graph::{DataGraph, PatternGraph, Predicate, EdgeBound, AttrValue};
//!
//! // A tiny data graph: a "boss" overseeing two workers.
//! let mut g = DataGraph::new();
//! let boss = g.add_node([("role", AttrValue::from("boss"))]);
//! let w1 = g.add_node([("role", AttrValue::from("worker"))]);
//! let w2 = g.add_node([("role", AttrValue::from("worker"))]);
//! g.add_edge(boss, w1).unwrap();
//! g.add_edge(w1, w2).unwrap();
//!
//! // A pattern: a boss connected to a worker within 2 hops.
//! let mut p = PatternGraph::new();
//! let pb = p.add_node(Predicate::label_eq("role", "boss"));
//! let pw = p.add_node(Predicate::label_eq("role", "worker"));
//! p.add_edge(pb, pw, EdgeBound::Hops(2)).unwrap();
//!
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(p.edge_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod builder;
mod csr;
pub mod data_graph;
pub mod dataset;
pub mod edge_bound;
pub mod error;
pub mod io;
pub mod node_id;
pub mod pattern_graph;
pub mod predicate;
pub mod traversal;
pub mod value;

pub use attributes::Attributes;
pub use builder::{DataGraphBuilder, PatternGraphBuilder};
pub use data_graph::DataGraph;
pub use dataset::{load_dataset, AttrSchema, OnDiskDataset};
pub use edge_bound::EdgeBound;
pub use error::GraphError;
pub use node_id::{NodeId, PatternNodeId};
pub use pattern_graph::{PatternEdge, PatternGraph, PatternNode};
pub use predicate::{AtomicFormula, CmpOp, Predicate};
pub use traversal::{
    bfs_distances_bounded, bfs_order, dfs_postorder, is_dag, reachable_from, reaches,
    strongly_connected_components, topological_order,
};
pub use value::{AttrType, AttrValue};

/// Convenient result alias used across the graph crate.
pub type Result<T> = std::result::Result<T, GraphError>;
