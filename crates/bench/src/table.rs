//! Plain-text table rendering for the experiment binaries.
//!
//! Each harness binary prints one table whose rows correspond to the x-axis
//! points of the figure it regenerates, so the output can be compared line by
//! line with the paper (and pasted into BENCHMARKS.md).

/// A simple left-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are converted to strings by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Fig X", &["pattern", "time (ms)"]);
        assert!(t.is_empty());
        t.row(vec!["P(4,4,3)".into(), "12.5".into()]);
        t.row(vec!["P(10,10,3)".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        assert!(text.contains("== Fig X =="));
        assert!(text.contains("P(4,4,3)"));
        let lines: Vec<&str> = text.lines().collect();
        // Header, separator and two rows after the title line.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
