//! On-demand BFS distance oracle (the "BFS" variant of Exp-2).
//!
//! Instead of materialising the full `|V|²` matrix, this oracle runs a BFS
//! from a source the first time that source is queried and memoises the row.
//! It trades the `O(|V|(|V|+|E|))` preprocessing and quadratic memory of the
//! matrix for per-query latency — exactly the trade-off the paper's "BFS"
//! variant explores (Figures 6(e)–(h) show it losing once many pairs are
//! queried, which is what `Match` does).

use crate::oracle::DistanceOracle;
use crate::UNREACHABLE;
use gpm_graph::{DataGraph, NodeId};
use parking_lot::Mutex;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// A memoising BFS distance oracle.
///
/// Cloning the oracle clears nothing — the cache is shared per instance, not
/// global — but the oracle is cheap to construct, so callers typically create
/// one per (graph, pattern) matching run.
#[derive(Debug, Default)]
pub struct BfsOracle {
    /// Memoised rows of non-empty distances, keyed by source node.
    rows: Mutex<FxHashMap<NodeId, Vec<u16>>>,
}

impl BfsOracle {
    /// Creates an empty oracle (no rows cached yet).
    pub fn new() -> Self {
        BfsOracle::default()
    }

    /// Number of sources whose BFS row is currently cached.
    pub fn cached_sources(&self) -> usize {
        self.rows.lock().len()
    }

    /// Drops every cached row. Call this after mutating the graph.
    pub fn invalidate(&self) {
        self.rows.lock().clear();
    }

    fn row_distance(&self, g: &DataGraph, from: NodeId, to: NodeId) -> u16 {
        let mut rows = self.rows.lock();
        let row = rows
            .entry(from)
            .or_insert_with(|| compute_nonempty_row(g, from));
        row[to.index()]
    }
}

/// One BFS from `from`, seeded at its out-neighbours, producing the full row
/// of non-empty distances.
fn compute_nonempty_row(g: &DataGraph, from: NodeId) -> Vec<u16> {
    let mut row = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    for &w in g.out_neighbors(from) {
        if row[w.index()] == UNREACHABLE {
            row[w.index()] = 1;
            queue.push_back(w);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = row[v.index()];
        for &w in g.out_neighbors(v) {
            if row[w.index()] == UNREACHABLE {
                row[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    row
}

impl DistanceOracle for BfsOracle {
    fn nonempty_distance(&self, g: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
        match self.row_distance(g, from, to) {
            UNREACHABLE => None,
            d => Some(u32::from(d)),
        }
    }

    fn name(&self) -> &'static str {
        "bfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DistanceMatrix;
    use gpm_graph::EdgeBound;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_nodes(5);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(0)).unwrap();
        g.add_edge(n(2), n(3)).unwrap();
        g
    }

    #[test]
    fn distances_match_matrix() {
        let g = sample();
        let m = DistanceMatrix::build(&g);
        let o = BfsOracle::new();
        for x in g.nodes() {
            for y in g.nodes() {
                assert_eq!(
                    o.nonempty_distance(&g, x, y),
                    m.nonempty_distance(x, y),
                    "mismatch at ({x}, {y})"
                );
            }
        }
    }

    #[test]
    fn caching_and_invalidation() {
        let g = sample();
        let o = BfsOracle::new();
        assert_eq!(o.cached_sources(), 0);
        let _ = o.nonempty_distance(&g, n(0), n(3));
        let _ = o.nonempty_distance(&g, n(0), n(4));
        assert_eq!(o.cached_sources(), 1);
        let _ = o.nonempty_distance(&g, n(2), n(1));
        assert_eq!(o.cached_sources(), 2);
        o.invalidate();
        assert_eq!(o.cached_sources(), 0);
    }

    #[test]
    fn within_bounds() {
        let g = sample();
        let o = BfsOracle::new();
        assert!(o.within(&g, n(0), n(3), EdgeBound::Hops(3)));
        assert!(!o.within(&g, n(0), n(3), EdgeBound::Hops(2)));
        assert!(o.within(&g, n(0), n(0), EdgeBound::Unbounded)); // cycle through 0
        assert!(!o.within(&g, n(3), n(3), EdgeBound::Unbounded)); // no cycle
        assert_eq!(o.name(), "bfs");
    }

    proptest! {
        /// BFS oracle and matrix agree on random graphs.
        #[test]
        fn prop_agrees_with_matrix(
            nodes in 2usize..15,
            edges in proptest::collection::vec((0u32..15, 0u32..15), 0..60)
        ) {
            let mut g = DataGraph::new();
            g.add_nodes(nodes);
            for (a, b) in edges {
                if (a as usize) < nodes && (b as usize) < nodes {
                    let _ = g.try_add_edge(n(a), n(b));
                }
            }
            let m = DistanceMatrix::build(&g);
            let o = BfsOracle::new();
            for x in g.nodes() {
                for y in g.nodes() {
                    prop_assert_eq!(o.nonempty_distance(&g, x, y), m.nonempty_distance(x, y));
                }
            }
        }
    }
}
