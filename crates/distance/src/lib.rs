//! # gpm-distance
//!
//! Distance oracles for bounded-simulation graph pattern matching.
//!
//! The `Match` algorithm of Fan et al. (VLDB 2010) decides, for a pattern
//! edge `(u, u')` with bound `k`, whether a data node `x` has a *non-empty*
//! path of length `<= k` to some node matching `u'`. All of that reduces to
//! queries of the form "what is the length of the shortest **non-empty** path
//! from `x` to `y`?", which this crate answers through three interchangeable
//! oracles (the three variants compared in Exp-2 of the paper):
//!
//! * [`DistanceMatrix`] — the paper's distance matrix `M`: all-pairs
//!   non-empty shortest distances, `O(|V|(|V|+|E|))` to build, `O(1)` to
//!   query ("Match" in the figures);
//! * [`BfsOracle`] — on-demand BFS with per-source memoisation ("BFS");
//! * [`TwoHopIndex`] / [`TwoHopOracle`] — a pruned 2-hop reachability/distance
//!   labeling used as a filter in front of BFS ("2-hop").
//!
//! It also provides the **incremental shortest-path maintenance** the
//! incremental matching algorithms rely on: [`update_matrix`] (the paper's
//! `UpdateM`, unit updates) and [`update_matrix_batch`] (`UpdateBM`, batch
//! updates), both reporting the set of affected source–sink pairs (`AFF1`).
//! The same maintenance surface is part of the [`DistanceOracle`] trait
//! itself, with two maintainable implementations — [`DistanceMatrix`] and the
//! sublinear-memory [`IncrementalTwoHop`] labeling — selected at runtime via
//! [`OracleBackend`] (the `GPM_ORACLE` environment variable / `--oracle`
//! flag).
//!
//! ## Non-empty distances
//!
//! Bounded simulation requires witness paths of length `>= 1`, so the
//! distance from a node to itself is the length of the shortest cycle through
//! it (or "unreachable" if it lies on no cycle), not 0. Everything in this
//! crate works with that convention; standard distances are available where
//! needed via [`DistanceMatrix::standard_distance`].
//!
//! ## Paper map
//!
//! | paper | here |
//! |-------|------|
//! | matrix `M`, Theorem 3.1 proof | [`DistanceMatrix`] (`build` = one BFS per source) |
//! | "BFS" curves, Fig. 6(f)–(h) | [`BfsOracle`] |
//! | "2-hop" curves, Fig. 6(f)–(h) | [`TwoHopIndex`] / [`TwoHopOracle`] |
//! | `UpdateM` / `UpdateBM`, Section 4 | [`update_matrix`] / [`update_matrix_batch`] |
//! | `AFF1` | [`AffectedPairs`] |
//!
//! All oracles consume the data graph through its CSR slice accessors
//! (`out_neighbors`/`in_neighbors`), so every BFS expansion scans contiguous
//! memory.
//!
//! The construction and maintenance procedures run on the shared `gpm-exec`
//! executor: [`DistanceMatrix::build_with`] fans one BFS source chunk per
//! task, [`update_matrix_with`] partitions the affected area (source rows
//! for insertions, sink columns for deletions) across the workers with a
//! deterministic merge, and the `*_with`-less entry points default to the
//! process-wide [`gpm_exec::Parallelism::from_env`] policy.
//!
//! ## Example
//!
//! ```
//! use gpm_distance::DistanceMatrix;
//! use gpm_graph::{DataGraph, NodeId};
//!
//! // 0 -> 1 -> 2 -> 0: every node lies on a 3-cycle.
//! let g = DataGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
//! let m = DistanceMatrix::build(&g);
//! assert_eq!(m.nonempty_distance(NodeId::new(0), NodeId::new(2)), Some(2));
//! // Non-empty convention: the diagonal holds the shortest cycle length.
//! assert_eq!(m.nonempty_distance(NodeId::new(0), NodeId::new(0)), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bfs_oracle;
pub mod incremental;
pub mod matrix;
mod metrics;
pub mod oracle;
pub mod two_hop;
pub mod two_hop_inc;

pub use backend::OracleBackend;
pub use bfs_oracle::BfsOracle;
pub use incremental::{
    update_matrix, update_matrix_batch, update_matrix_batch_with, update_matrix_with, AffectedPair,
    AffectedPairs, EdgeUpdate,
};
pub use matrix::DistanceMatrix;
pub use oracle::DistanceOracle;
pub use two_hop::{TwoHopIndex, TwoHopOracle};
pub use two_hop_inc::IncrementalTwoHop;

/// Hop count representing "no path"; distances are stored as `u16` because
/// no graph in this workload family has a diameter anywhere near 65k hops.
pub const UNREACHABLE: u16 = u16::MAX;
