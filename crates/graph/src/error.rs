//! Error types shared by the graph substrate.

use crate::node_id::{NodeId, PatternNodeId};
use std::fmt;

/// Errors raised by graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A data-graph node id does not exist in the graph.
    UnknownNode(NodeId),
    /// A pattern-graph node id does not exist in the pattern.
    UnknownPatternNode(PatternNodeId),
    /// The edge already exists (parallel edges are not part of the model).
    DuplicateEdge(NodeId, NodeId),
    /// The pattern edge already exists.
    DuplicatePatternEdge(PatternNodeId, PatternNodeId),
    /// The edge to delete does not exist.
    MissingEdge(NodeId, NodeId),
    /// An edge bound of `0` hops was supplied; bounds must be `>= 1` or `*`.
    ZeroEdgeBound,
    /// A self-loop was supplied where the model forbids it (pattern graphs).
    SelfLoop(PatternNodeId),
    /// An operation required a DAG pattern but the pattern is cyclic
    /// (e.g. `Match+` / `IncMatch`, Section 4).
    PatternNotAcyclic,
    /// Parsing a serialized graph failed.
    Parse(String),
    /// Parsing a dataset file failed at a known position.
    ///
    /// `line` is 1-based; `column` is the 1-based CSV column (field index)
    /// when the error is tied to one field, `0` when it concerns the whole
    /// line. Produced by the typed attribute-CSV loader in [`crate::dataset`].
    ParseAt {
        /// 1-based line number within the offending file.
        line: usize,
        /// 1-based CSV column, or `0` when the error spans the line.
        column: usize,
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "unknown data-graph node {v}"),
            GraphError::UnknownPatternNode(u) => write!(f, "unknown pattern node {u}"),
            GraphError::DuplicateEdge(a, b) => write!(f, "edge ({a}, {b}) already exists"),
            GraphError::DuplicatePatternEdge(a, b) => {
                write!(f, "pattern edge ({a}, {b}) already exists")
            }
            GraphError::MissingEdge(a, b) => write!(f, "edge ({a}, {b}) does not exist"),
            GraphError::ZeroEdgeBound => {
                write!(f, "pattern edge bounds must be >= 1 hop (or unbounded)")
            }
            GraphError::SelfLoop(u) => write!(f, "pattern node {u} cannot have a self-loop"),
            GraphError::PatternNotAcyclic => {
                write!(
                    f,
                    "operation requires a DAG pattern but the pattern has a cycle"
                )
            }
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::ParseAt { line, column, msg } => {
                if *column > 0 {
                    write!(f, "parse error at line {line}, column {column}: {msg}")
                } else {
                    write!(f, "parse error at line {line}: {msg}")
                }
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::UnknownNode(NodeId::new(3)), "v3"),
            (GraphError::UnknownPatternNode(PatternNodeId::new(1)), "u1"),
            (
                GraphError::DuplicateEdge(NodeId::new(0), NodeId::new(1)),
                "already exists",
            ),
            (
                GraphError::MissingEdge(NodeId::new(0), NodeId::new(1)),
                "does not exist",
            ),
            (GraphError::ZeroEdgeBound, ">= 1"),
            (GraphError::SelfLoop(PatternNodeId::new(2)), "self-loop"),
            (GraphError::PatternNotAcyclic, "DAG"),
            (GraphError::Parse("bad line".into()), "bad line"),
            (
                GraphError::ParseAt {
                    line: 7,
                    column: 0,
                    msg: "bad row".into(),
                },
                "line 7",
            ),
            (
                GraphError::ParseAt {
                    line: 7,
                    column: 3,
                    msg: "bad field".into(),
                },
                "column 3",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "`{err}` should mention `{needle}`"
            );
        }
    }

    #[test]
    fn implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(GraphError::ZeroEdgeBound);
        assert!(err.to_string().contains("hop"));
    }
}
